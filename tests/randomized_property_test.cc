// Property-based tests: random action histories with random crash points.
// Invariant (thesis ch. 6): after recovery, every atomic object's state is
// what running the COMMITTED actions in order would produce, and every mutex
// object holds its last PREPARED version.

#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/recovery/validate.h"
#include "tests/test_support.h"

namespace argus {
namespace {

struct Params {
  LogMode mode;
  std::uint64_t seed;
};

std::string ParamName(const testing::TestParamInfo<Params>& info) {
  return std::string(info.param.mode == LogMode::kSimple ? "simple" : "hybrid") + "_seed" +
         std::to_string(info.param.seed);
}

class RandomHistoryTest : public testing::TestWithParam<Params> {};

INSTANTIATE_TEST_SUITE_P(Sweep, RandomHistoryTest,
                         testing::Values(Params{LogMode::kSimple, 1},
                                         Params{LogMode::kSimple, 2},
                                         Params{LogMode::kSimple, 3},
                                         Params{LogMode::kHybrid, 1},
                                         Params{LogMode::kHybrid, 2},
                                         Params{LogMode::kHybrid, 3},
                                         Params{LogMode::kHybrid, 4},
                                         Params{LogMode::kHybrid, 5}),
                         ParamName);

constexpr int kAtomicVars = 6;
constexpr int kMutexVars = 3;

std::string AtomicName(int i) { return "a" + std::to_string(i); }
std::string MutexName(int i) { return "m" + std::to_string(i); }

TEST_P(RandomHistoryTest, RecoveredStateMatchesCommittedModel) {
  const Params params = GetParam();
  Rng rng(params.seed * 7919);
  StorageHarness h(params.mode);

  // Model: committed value per atomic var; last-prepared value per mutex var.
  std::map<std::string, std::int64_t> model_atomic;
  std::map<std::string, std::int64_t> model_mutex;

  // Seed the stable state.
  {
    ActionId t0 = Aid(1);
    for (int i = 0; i < kAtomicVars; ++i) {
      RecoverableObject* obj = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(0));
      ASSERT_TRUE(h.BindStable(t0, AtomicName(i), obj).ok());
      model_atomic[AtomicName(i)] = 0;
    }
    for (int i = 0; i < kMutexVars; ++i) {
      RecoverableObject* obj = h.ctx(t0).CreateMutex(h.heap(), Value::Int(0));
      ASSERT_TRUE(h.BindStable(t0, MutexName(i), obj).ok());
      model_mutex[MutexName(i)] = 0;
    }
    ASSERT_TRUE(h.PrepareAndCommit(t0).ok());
  }

  std::uint64_t next_seq = 2;
  for (int step = 0; step < 120; ++step) {
    ActionId aid = Aid(next_seq++);
    std::map<std::string, std::int64_t> staged_atomic;
    std::map<std::string, std::int64_t> staged_mutex;

    // Touch 1-3 atomic vars and 0-1 mutex vars.
    int k = static_cast<int>(rng.NextInRange(1, 3));
    bool blocked = false;
    for (int j = 0; j < k; ++j) {
      std::string name = AtomicName(static_cast<int>(rng.NextBelow(kAtomicVars)));
      std::int64_t v = static_cast<std::int64_t>(rng.NextBelow(1000));
      Status s = h.ctx(aid).WriteObject(h.StableVar(name), Value::Int(v));
      if (!s.ok()) {
        blocked = true;  // lock conflict with a still-prepared action
        break;
      }
      staged_atomic[name] = v;
    }
    if (!blocked && rng.NextBool(0.4)) {
      std::string name = MutexName(static_cast<int>(rng.NextBelow(kMutexVars)));
      std::int64_t v = static_cast<std::int64_t>(rng.NextBelow(1000));
      Status s = h.ctx(aid).MutateMutex(h.StableVar(name), [&](Value& mv) {
        mv = Value::Int(v);
      });
      if (s.ok()) {
        staged_mutex[name] = v;
      }
    }
    if (blocked) {
      ASSERT_TRUE(h.AbortPrepared(aid).ok());  // releases whatever was taken
      continue;
    }

    // Occasionally early-prepare part of the work (hybrid exercise).
    if (params.mode == LogMode::kHybrid && rng.NextBool(0.3)) {
      Result<ModifiedObjectsSet> leftover = h.rs().WriteEntry(aid, h.ctx(aid).TakeMos());
      ASSERT_TRUE(leftover.ok());
      h.ctx(aid).AddToMos(leftover.value());
    }

    double dice = rng.NextDouble();
    if (dice < 0.15) {
      // Abort before prepare: no durable trace.
      ASSERT_TRUE(h.AbortPrepared(aid).ok());
      continue;
    }
    ASSERT_TRUE(h.PrepareOnly(aid).ok());
    // Once prepared, mutex writes are durable whatever happens next.
    for (const auto& [name, v] : staged_mutex) {
      model_mutex[name] = v;
    }
    if (dice < 0.30) {
      // Prepared then aborted.
      ASSERT_TRUE(h.AbortPrepared(aid).ok());
      continue;
    }
    if (dice < 0.40) {
      // Prepared, undecided at crash time: resolved by abort after recovery.
      continue;
    }
    ASSERT_TRUE(h.rs().Commit(aid).ok());
    h.ctx(aid).CommitVolatile(h.heap());
    for (const auto& [name, v] : staged_atomic) {
      model_atomic[name] = v;
    }

    // Occasional housekeeping (hybrid only).
    if (params.mode == LogMode::kHybrid && rng.NextBool(0.05)) {
      HousekeepingMethod method = rng.NextBool(0.5) ? HousekeepingMethod::kCompaction
                                                    : HousekeepingMethod::kSnapshot;
      ASSERT_TRUE(h.rs().Housekeep(method).ok()) << "step " << step;
    }

    // Occasional crash + recovery mid-history.
    if (rng.NextBool(0.08)) {
      Result<RecoveryInfo> info = h.CrashAndRecover();
      ASSERT_TRUE(info.ok()) << "step " << step << ": " << info.status().ToString();
      // Resolve all still-prepared actions by aborting them.
      for (const auto& [paid, state] : info.value().pt) {
        if (state == ParticipantState::kPrepared) {
          ASSERT_TRUE(h.rs().Abort(paid).ok());
          for (const auto& [uid, entry] : info.value().ot) {
            if (entry.object->is_atomic()) {
              entry.object->AbortAction(paid);
            }
          }
        }
      }
      for (const auto& [name, v] : model_atomic) {
        ASSERT_EQ(h.StableVar(name)->base_version(), Value::Int(v))
            << name << " at step " << step;
      }
      for (const auto& [name, v] : model_mutex) {
        ASSERT_EQ(h.StableVar(name)->mutex_value(), Value::Int(v))
            << name << " at step " << step;
      }
    }
  }

  // Final crash: full check.
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // Global structural invariants of the recovered heap (V1-V6).
  ValidationReport structural = ValidateRecoveredState(h.heap(), info.value());
  EXPECT_TRUE(structural.clean()) << structural.ToString();
  for (const auto& [name, v] : model_atomic) {
    EXPECT_EQ(h.StableVar(name)->base_version(), Value::Int(v)) << name;
  }
  for (const auto& [name, v] : model_mutex) {
    EXPECT_EQ(h.StableVar(name)->mutex_value(), Value::Int(v)) << name;
  }

  // Structural invariants.
  const AccessibilitySet& as = h.rs().writer().accessibility_set();
  for (Uid uid : h.heap().ComputeAccessibleUids()) {
    EXPECT_TRUE(as.contains(uid)) << "AS must cover reachable " << to_string(uid);
  }
}

TEST(RandomizedGraphs, RandomObjectGraphsSurviveCrash) {
  // Random nested value graphs with cross-references: flatten/unflatten and
  // reference resolution must reproduce them exactly.
  Rng rng(424242);
  StorageHarness h(LogMode::kHybrid);
  ActionId t0 = Aid(1);
  std::vector<RecoverableObject*> objs;
  for (int i = 0; i < 20; ++i) {
    // Build a random value possibly referencing earlier objects.
    Value v;
    switch (rng.NextBelow(4)) {
      case 0:
        v = Value::Int(static_cast<std::int64_t>(rng.NextBelow(100)));
        break;
      case 1:
        v = Value::Str(std::string(rng.NextBelow(20), 'x'));
        break;
      case 2: {
        Value::List list;
        for (std::uint64_t j = 0; j < rng.NextBelow(4); ++j) {
          list.push_back(Value::Int(static_cast<std::int64_t>(j)));
        }
        if (!objs.empty() && rng.NextBool(0.7)) {
          list.push_back(Value::Ref(objs[rng.NextBelow(objs.size())]));
        }
        v = Value::OfList(std::move(list));
        break;
      }
      default: {
        Value::Record rec;
        rec["n"] = Value::Int(static_cast<std::int64_t>(i));
        if (!objs.empty() && rng.NextBool(0.7)) {
          rec["ref"] = Value::Ref(objs[rng.NextBelow(objs.size())]);
        }
        v = Value::OfRecord(std::move(rec));
        break;
      }
    }
    objs.push_back(h.ctx(t0).CreateAtomic(h.heap(), std::move(v)));
    ASSERT_TRUE(h.BindStable(t0, "o" + std::to_string(i), objs.back()).ok());
  }
  // Remember flattened images keyed by variable name.
  std::map<std::string, std::vector<std::byte>> images;
  for (int i = 0; i < 20; ++i) {
    images["o" + std::to_string(i)] =
        FlattenValue(objs[static_cast<std::size_t>(i)]->current_version(), nullptr);
  }
  ASSERT_TRUE(h.PrepareAndCommit(t0).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  for (const auto& [name, image] : images) {
    RecoverableObject* obj = h.StableVar(name);
    ASSERT_NE(obj, nullptr) << name;
    EXPECT_EQ(FlattenValue(obj->base_version(), nullptr), image) << name;
  }
}

}  // namespace
}  // namespace argus
