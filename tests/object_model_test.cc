// Tests for recoverable objects (§2.4), the volatile heap, and the per-action
// context: locks, versions, commit/abort installation, traversal.

#include <gtest/gtest.h>

#include "src/object/action_context.h"
#include "tests/test_support.h"

namespace argus {
namespace {

TEST(RecoverableObject, WriteLockCreatesCurrentVersion) {
  RecoverableObject obj(ObjectKind::kAtomic, Uid{1}, Value::Int(1));
  ActionId t1 = Aid(1);
  ASSERT_TRUE(obj.AcquireWriteLock(t1).ok());
  EXPECT_TRUE(obj.has_current());
  obj.MutableCurrent(t1) = Value::Int(2);
  EXPECT_EQ(obj.base_version(), Value::Int(1));
  EXPECT_EQ(obj.current_version(), Value::Int(2));
}

TEST(RecoverableObject, CommitInstallsCurrentAsBase) {
  RecoverableObject obj(ObjectKind::kAtomic, Uid{1}, Value::Int(1));
  ActionId t1 = Aid(1);
  ASSERT_TRUE(obj.AcquireWriteLock(t1).ok());
  obj.MutableCurrent(t1) = Value::Int(5);
  obj.CommitAction(t1);
  EXPECT_FALSE(obj.has_current());
  EXPECT_EQ(obj.base_version(), Value::Int(5));
  EXPECT_FALSE(obj.locked());
}

TEST(RecoverableObject, AbortDiscardsCurrent) {
  RecoverableObject obj(ObjectKind::kAtomic, Uid{1}, Value::Int(1));
  ActionId t1 = Aid(1);
  ASSERT_TRUE(obj.AcquireWriteLock(t1).ok());
  obj.MutableCurrent(t1) = Value::Int(5);
  obj.AbortAction(t1);
  EXPECT_EQ(obj.base_version(), Value::Int(1));
  EXPECT_FALSE(obj.locked());
}

TEST(RecoverableObject, ConflictingWriteLocksRefused) {
  RecoverableObject obj(ObjectKind::kAtomic, Uid{1}, Value::Int(0));
  ASSERT_TRUE(obj.AcquireWriteLock(Aid(1)).ok());
  EXPECT_EQ(obj.AcquireWriteLock(Aid(2)).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(obj.AcquireReadLock(Aid(2)).code(), ErrorCode::kUnavailable);
}

TEST(RecoverableObject, SharedReadLocksAllowed) {
  RecoverableObject obj(ObjectKind::kAtomic, Uid{1}, Value::Int(0));
  EXPECT_TRUE(obj.AcquireReadLock(Aid(1)).ok());
  EXPECT_TRUE(obj.AcquireReadLock(Aid(2)).ok());
  // Neither can upgrade while the other reads.
  EXPECT_EQ(obj.AcquireWriteLock(Aid(1)).code(), ErrorCode::kUnavailable);
}

TEST(RecoverableObject, SoleReaderCanUpgrade) {
  RecoverableObject obj(ObjectKind::kAtomic, Uid{1}, Value::Int(0));
  ActionId t1 = Aid(1);
  ASSERT_TRUE(obj.AcquireReadLock(t1).ok());
  EXPECT_TRUE(obj.AcquireWriteLock(t1).ok());
  EXPECT_TRUE(obj.HoldsWriteLock(t1));
}

TEST(RecoverableObject, WriteLockIsReentrant) {
  RecoverableObject obj(ObjectKind::kAtomic, Uid{1}, Value::Int(0));
  ActionId t1 = Aid(1);
  ASSERT_TRUE(obj.AcquireWriteLock(t1).ok());
  obj.MutableCurrent(t1) = Value::Int(1);
  ASSERT_TRUE(obj.AcquireWriteLock(t1).ok());
  // Re-acquisition must not clobber the tentative version.
  EXPECT_EQ(obj.current_version(), Value::Int(1));
}

TEST(RecoverableObject, MutexSeizeRelease) {
  RecoverableObject obj(ObjectKind::kMutex, Uid{2}, Value::Int(0));
  ActionId t1 = Aid(1);
  ActionId t2 = Aid(2);
  ASSERT_TRUE(obj.Seize(t1).ok());
  EXPECT_EQ(obj.Seize(t2).code(), ErrorCode::kUnavailable);
  obj.MutableValue(t1) = Value::Int(3);
  obj.Release(t1);
  EXPECT_TRUE(obj.Seize(t2).ok());
  EXPECT_EQ(obj.mutex_value(), Value::Int(3));
}

TEST(Heap, RootExistsWithUidZero) {
  VolatileHeap heap;
  ASSERT_NE(heap.root(), nullptr);
  EXPECT_EQ(heap.root()->uid(), Uid::Root());
  EXPECT_TRUE(heap.root()->base_version().is_record());
  EXPECT_EQ(heap.Get(Uid::Root()), heap.root());
}

TEST(Heap, CreateAssignsFreshUids) {
  VolatileHeap heap;
  ActionId t1 = Aid(1);
  RecoverableObject* a = heap.CreateAtomic(t1, Value::Int(1));
  RecoverableObject* b = heap.CreateMutex(Value::Int(2));
  EXPECT_NE(a->uid(), b->uid());
  EXPECT_TRUE(a->uid().valid());
  EXPECT_EQ(heap.Get(a->uid()), a);
  EXPECT_EQ(heap.Get(b->uid()), b);
}

TEST(Heap, CreatorHoldsReadLockOnNewAtomic) {
  VolatileHeap heap;
  ActionId t1 = Aid(1);
  RecoverableObject* a = heap.CreateAtomic(t1, Value::Int(1));
  EXPECT_TRUE(a->HoldsReadLock(t1));
}

TEST(Heap, TraversalFollowsBaseAndCurrentVersions) {
  VolatileHeap heap;
  ActionId t1 = Aid(1);
  RecoverableObject* a = heap.CreateAtomic(t1, Value::Int(1));
  RecoverableObject* b = heap.CreateAtomic(t1, Value::Int(2));
  // Root (base) → a committed; a's CURRENT version → b.
  heap.root()->RestoreBase(Value::OfRecord({{"a", Value::Ref(a)}}));
  ASSERT_TRUE(a->AcquireWriteLock(t1).ok());
  a->MutableCurrent(t1) = Value::Ref(b);

  std::unordered_set<Uid> uids = heap.ComputeAccessibleUids();
  EXPECT_TRUE(uids.contains(Uid::Root()));
  EXPECT_TRUE(uids.contains(a->uid()));
  EXPECT_TRUE(uids.contains(b->uid()));
}

TEST(Heap, TraversalSkipsUnreachable) {
  VolatileHeap heap;
  ActionId t1 = Aid(1);
  RecoverableObject* a = heap.CreateAtomic(t1, Value::Int(1));
  heap.CreateAtomic(t1, Value::Int(2));  // never linked
  heap.root()->RestoreBase(Value::OfRecord({{"a", Value::Ref(a)}}));
  EXPECT_EQ(heap.ComputeAccessibleUids().size(), 2u);  // root + a
}

TEST(Heap, InstallRecoveredBumpsUidCounter) {
  VolatileHeap heap;
  heap.InstallRecovered(Uid{41}, ObjectKind::kAtomic);
  EXPECT_GE(heap.next_uid(), 42u);
}

TEST(ActionContext, WriteRecordsInMos) {
  VolatileHeap heap;
  ActionContext ctx(Aid(1));
  RecoverableObject* a = ctx.CreateAtomic(heap, Value::Int(0));
  ASSERT_TRUE(ctx.WriteObject(a, Value::Int(9)).ok());
  EXPECT_TRUE(ctx.mos().contains(a->uid()));
  EXPECT_EQ(a->current_version(), Value::Int(9));
}

TEST(ActionContext, ReadDoesNotEnterMos) {
  VolatileHeap heap;
  ActionContext writer(Aid(1));
  RecoverableObject* a = writer.CreateAtomic(heap, Value::Int(4));
  writer.CommitVolatile(heap);

  ActionContext reader(Aid(2));
  Result<Value> v = reader.ReadObject(a);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), Value::Int(4));
  EXPECT_TRUE(reader.mos().empty());
}

TEST(ActionContext, CommitVolatileInstallsAndReleases) {
  VolatileHeap heap;
  ActionContext ctx(Aid(1));
  RecoverableObject* a = ctx.CreateAtomic(heap, Value::Int(0));
  ASSERT_TRUE(ctx.WriteObject(a, Value::Int(8)).ok());
  ctx.CommitVolatile(heap);
  EXPECT_EQ(a->base_version(), Value::Int(8));
  EXPECT_FALSE(a->locked());
  EXPECT_TRUE(ctx.mos().empty());
}

TEST(ActionContext, AbortVolatileDiscards) {
  VolatileHeap heap;
  ActionContext creator(Aid(1));
  RecoverableObject* a = creator.CreateAtomic(heap, Value::Int(1));
  creator.CommitVolatile(heap);

  ActionContext ctx(Aid(2));
  ASSERT_TRUE(ctx.WriteObject(a, Value::Int(2)).ok());
  ctx.AbortVolatile(heap);
  EXPECT_EQ(a->base_version(), Value::Int(1));
  EXPECT_FALSE(a->locked());
}

TEST(ActionContext, MutateMutexSeizesAndRecords) {
  VolatileHeap heap;
  ActionContext ctx(Aid(1));
  RecoverableObject* m = ctx.CreateMutex(heap, Value::Int(0));
  ASSERT_TRUE(ctx.MutateMutex(m, [](Value& v) { v = Value::Int(10); }).ok());
  EXPECT_EQ(m->mutex_value(), Value::Int(10));
  EXPECT_FALSE(m->seized());
  EXPECT_TRUE(ctx.mos().contains(m->uid()));
}

TEST(ActionContext, UpdateObjectEditsInPlace) {
  VolatileHeap heap;
  ActionContext ctx(Aid(1));
  RecoverableObject* a = ctx.CreateAtomic(heap, Value::OfList({Value::Int(1)}));
  ASSERT_TRUE(
      ctx.UpdateObject(a, [](Value& v) { v.as_list().push_back(Value::Int(2)); }).ok());
  EXPECT_EQ(a->current_version().as_list().size(), 2u);
}

TEST(ActionContext, WriteConflictSurfacesUnavailable) {
  VolatileHeap heap;
  ActionContext creator(Aid(1));
  RecoverableObject* a = creator.CreateAtomic(heap, Value::Int(0));
  creator.CommitVolatile(heap);

  ActionContext t2(Aid(2));
  ActionContext t3(Aid(3));
  ASSERT_TRUE(t2.WriteObject(a, Value::Int(1)).ok());
  EXPECT_EQ(t3.WriteObject(a, Value::Int(2)).code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace argus
