// Tests for the automatic checkpoint policy.

#include <gtest/gtest.h>

#include "src/recovery/checkpoint_policy.h"
#include "tests/test_support.h"

namespace argus {
namespace {

void Seed(StorageHarness& h) {
  ActionId t0 = Aid(100);
  RecoverableObject* a = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(0));
  ASSERT_TRUE(h.BindStable(t0, "a", a).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t0).ok());
}

void Churn(StorageHarness& h, std::uint64_t base, int n) {
  for (int i = 0; i < n; ++i) {
    ActionId t = Aid(base + static_cast<std::uint64_t>(i));
    ASSERT_TRUE(h.ctx(t).WriteObject(h.StableVar("a"),
                                     Value::Str(std::string(100, 'x'))).ok());
    ASSERT_TRUE(h.PrepareAndCommit(t).ok());
  }
}

TEST(CheckpointPolicy, FiresOnByteGrowth) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  CheckpointPolicyConfig config;
  config.log_growth_bytes = 4096;
  config.entries_since_checkpoint = 0;
  CheckpointPolicy policy(config);
  policy.Rearm(h.rs());

  EXPECT_FALSE(policy.ShouldHousekeep(h.rs()));
  Churn(h, 1, 30);  // ~30 * (100B payload + overhead) >> 4096
  EXPECT_TRUE(policy.ShouldHousekeep(h.rs()));

  Result<bool> ran = policy.MaybeHousekeep(h.rs());
  ASSERT_TRUE(ran.ok());
  EXPECT_TRUE(ran.value());
  EXPECT_EQ(policy.checkpoints_taken(), 1u);
  // Immediately after a checkpoint the policy is quiet again.
  EXPECT_FALSE(policy.ShouldHousekeep(h.rs()));
}

TEST(CheckpointPolicy, FiresOnEntryCount) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  CheckpointPolicyConfig config;
  config.log_growth_bytes = 0;
  config.entries_since_checkpoint = 20;
  CheckpointPolicy policy(config);
  policy.Rearm(h.rs());

  Churn(h, 1, 5);  // 3 entries per action: data + prepared + committed
  EXPECT_FALSE(policy.ShouldHousekeep(h.rs()));
  Churn(h, 50, 5);
  EXPECT_TRUE(policy.ShouldHousekeep(h.rs()));
}

TEST(CheckpointPolicy, DisabledTriggersNeverFire) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  CheckpointPolicyConfig config;
  config.log_growth_bytes = 0;
  config.entries_since_checkpoint = 0;
  CheckpointPolicy policy(config);
  policy.Rearm(h.rs());
  Churn(h, 1, 50);
  EXPECT_FALSE(policy.ShouldHousekeep(h.rs()));
}

TEST(CheckpointPolicy, StateCorrectAfterPolicyCheckpoint) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  CheckpointPolicyConfig config;
  config.log_growth_bytes = 2048;
  CheckpointPolicy policy(config);
  policy.Rearm(h.rs());
  for (int round = 0; round < 10; ++round) {
    Churn(h, 1 + static_cast<std::uint64_t>(round) * 100, 10);
    Result<bool> ran = policy.MaybeHousekeep(h.rs());
    ASSERT_TRUE(ran.ok());
  }
  EXPECT_GT(policy.checkpoints_taken(), 1u);
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Str(std::string(100, 'x')));
}

TEST(CheckpointPolicy, CompactionMethodSelectable) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  CheckpointPolicyConfig config;
  config.log_growth_bytes = 1;
  config.method = HousekeepingMethod::kCompaction;
  CheckpointPolicy policy(config);
  policy.Rearm(h.rs());
  Churn(h, 1, 5);
  Result<bool> ran = policy.MaybeHousekeep(h.rs());
  ASSERT_TRUE(ran.ok());
  EXPECT_TRUE(ran.value());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Str(std::string(100, 'x')));
}

}  // namespace
}  // namespace argus
