// Coherent crash injection for the concurrent workload driver (DESIGN.md
// "Crash coherence" section, experiment E12).
//
// Three layers, bottom up:
//   1. CrashController — the rendezvous barrier itself: every worker parked
//      before the crash executor runs, exactly-once execution, sticky errors.
//   2. FlushCoordinator::Crash — the wakeup that makes the barrier reachable
//      from inside WaitDurable: blocked forces return kCrashed, but frames
//      that were already durable still report Ok.
//   3. The full storm — seeded sweeps of the concurrent driver with crashes
//      landing mid-traffic and mid-checkpoint, plus media faults armed during
//      post-crash recovery. The oracle is the durable-prefix reconciliation:
//      zero lost-committed actions, zero partial actions, over every seed.
//
// The suite carries the `concurrency` ctest label, so CI runs it under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/log/flush_coordinator.h"
#include "src/obs/trace.h"
#include "src/tpc/crash_controller.h"
#include "src/tpc/workload.h"
#include "tests/test_support.h"

namespace argus {
namespace {

// ---------------------------------------------------------------------------
// CrashController
// ---------------------------------------------------------------------------

TEST(CrashController, SingleWorkerRunsCrashInline) {
  int crashes = 0;
  CrashController controller(1, [&] {
    ++crashes;
    return Status::Ok();
  });
  EXPECT_TRUE(controller.Poll().ok());
  EXPECT_FALSE(controller.crash_pending());
  ASSERT_TRUE(controller.RequestCrash().ok());
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(controller.crashes(), 1u);
  EXPECT_FALSE(controller.crash_pending());
  // The world is back; traffic resumes.
  EXPECT_TRUE(controller.Poll().ok());
  controller.Deregister();
}

TEST(CrashController, EveryWorkerParkedWhenCrashExecutes) {
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kIterations = 200;
  std::atomic<int> in_action{0};
  std::atomic<bool> freeze_violated{false};
  std::atomic<std::uint64_t> crashes{0};

  CrashController controller(kWorkers, [&] {
    // The whole point: the executor owns the world. Any worker still inside
    // its "action" here means the freeze failed.
    if (in_action.load() != 0) {
      freeze_violated = true;
    }
    ++crashes;
    return Status::Ok();
  });

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(7 + t);
      for (std::size_t i = 0; i < kIterations; ++i) {
        if (!controller.Poll().ok()) {
          break;
        }
        if (rng.NextBool(0.02) && !controller.RequestCrash().ok()) {
          break;
        }
        ++in_action;
        ++in_action;  // a couple of "work" steps widen the race window
        in_action -= 2;
      }
      controller.Deregister();
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_FALSE(freeze_violated.load());
  EXPECT_EQ(controller.crashes(), crashes.load());
  EXPECT_GE(controller.crashes(), 1u);
}

TEST(CrashController, FailedCrashIsStickyForEveryone) {
  CrashController controller(2, [] { return Status::IoError("recovery failed"); });
  std::atomic<bool> requester_done{false};
  Status requester_status;
  std::thread requester([&] {
    requester_status = controller.RequestCrash();
    requester_done = true;
  });
  // The second worker parks via Poll (once the request is pending) and must
  // come back with the same sticky error.
  Status poller_status = Status::Ok();
  while (poller_status.ok()) {
    poller_status = controller.Poll();
  }
  requester.join();
  ASSERT_TRUE(requester_done.load());
  EXPECT_EQ(requester_status.code(), ErrorCode::kIoError);
  EXPECT_EQ(poller_status.code(), ErrorCode::kIoError);
  // And it stays sticky: no retry resurrects the world.
  EXPECT_EQ(controller.Poll().code(), ErrorCode::kIoError);
  EXPECT_EQ(controller.RequestCrash().code(), ErrorCode::kIoError);
  EXPECT_EQ(controller.crashes(), 0u);
  controller.Deregister();
  controller.Deregister();
}

TEST(CrashController, DeregisterUnblocksPendingCrash) {
  // Worker B finishes its quota and leaves while worker A is mid-request:
  // the barrier must re-evaluate against the shrunken registration count, or
  // A waits forever for a rendezvous that can no longer happen.
  std::atomic<int> crashes{0};
  CrashController controller(2, [&] {
    ++crashes;
    return Status::Ok();
  });
  std::thread requester([&] { EXPECT_TRUE(controller.RequestCrash().ok()); });
  controller.Deregister();
  requester.join();
  EXPECT_EQ(crashes.load(), 1);
  controller.Deregister();
}

// ---------------------------------------------------------------------------
// FlushCoordinator::Crash
// ---------------------------------------------------------------------------

DataEntry StormData(std::uint64_t tag) {
  DataEntry e;
  e.kind = ObjectKind::kAtomic;
  e.uid = Uid::Root();
  e.aid = Aid(tag);
  e.value = std::vector<std::byte>(16, std::byte{static_cast<std::uint8_t>(tag & 0xff)});
  return e;
}

TEST(FlushCoordinatorCrash, BlockedForceWakesWithKCrashed) {
  StableLog log(std::make_unique<InMemoryStableMedium>());
  FlushCoordinatorConfig config;
  config.batch_window = std::chrono::seconds(30);
  config.max_batch = 64;
  FlushCoordinator coordinator(&log, config);
  // One staged entry and a lone waiter: the elected leader lingers for the
  // rest of a 64-request batch that never arrives, so the only wakeup that
  // can resolve this force before the 30 s window is the crash — and if the
  // crash lands first, the loop-top check answers the same way.
  LogAddress staged = log.Write(LogEntry(StormData(1)));
  Status blocked = Status::Ok();
  std::thread waiter([&] { blocked = coordinator.ForceUpTo(staged); });
  coordinator.Crash();
  waiter.join();
  EXPECT_EQ(blocked.code(), ErrorCode::kCrashed);
  EXPECT_TRUE(coordinator.crashed());
}

TEST(FlushCoordinatorCrash, NewForcesRefuseAfterCrash) {
  StableLog log(std::make_unique<InMemoryStableMedium>());
  FlushCoordinator coordinator(&log);
  coordinator.Crash();
  Result<LogAddress> addr = coordinator.ForceWrite(LogEntry(StormData(1)));
  ASSERT_FALSE(addr.ok());
  EXPECT_EQ(addr.status().code(), ErrorCode::kCrashed);
}

TEST(FlushCoordinatorCrash, AlreadyDurableFramesStillReportOk) {
  StableLog log(std::make_unique<InMemoryStableMedium>());
  FlushCoordinator coordinator(&log);
  ASSERT_TRUE(coordinator.ForceWrite(LogEntry(StormData(1))).ok());
  coordinator.Crash();
  // The frame at offset 0 hit the medium before the crash; the in-doubt
  // (kCrashed) answer would be wrong — durability, once true, stays true.
  EXPECT_TRUE(coordinator.ForceUpTo(LogAddress{0}).ok());
}

// ---------------------------------------------------------------------------
// The full storm
// ---------------------------------------------------------------------------

SimWorldConfig StormWorld(std::size_t guardians, std::uint64_t seed, MediumKind medium) {
  SimWorldConfig config;
  config.guardian_count = guardians;
  config.mode = LogMode::kHybrid;
  config.medium = medium;
  config.seed = seed;
  config.group_commit = FlushCoordinatorConfig{};
  return config;
}

TEST(CrashStorm, ConcurrentCrashInjectionIsAccepted) {
  // Regression for the old guard: Run() with threads >= 2 and
  // crash_probability > 0 used to return InvalidArgument.
  SimWorld world(StormWorld(2, 41, MediumKind::kInMemory));
  WorkloadConfig config;
  config.seed = 41;
  config.threads = 2;
  config.crash_probability = 0.1;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(80);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(driver.stats().crashes, 1u);
  EXPECT_EQ(driver.stats().per_thread_failures.size(), 2u);
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

TEST(CrashStorm, RecoveryFaultsRequireCrashes) {
  SimWorld world(StormWorld(1, 42, MediumKind::kDuplexed));
  WorkloadConfig config;
  config.seed = 42;
  config.threads = 2;
  DiskFaultPlan plan;
  plan.decay_on_read_probability = 0.05;
  config.recovery_faults = plan;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(10);
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
}

TEST(CrashStorm, RecoveryFaultsRequireDuplexedMedium) {
  SimWorld world(StormWorld(1, 43, MediumKind::kInMemory));
  WorkloadConfig config;
  config.seed = 43;
  config.threads = 2;
  config.crash_probability = 0.1;
  DiskFaultPlan plan;
  plan.decay_on_read_probability = 0.05;
  config.recovery_faults = plan;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(10);
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
}

// The E12 sweep: 64 seeds of the full stack — duplexed Lampson-Sturgis
// media, group commit, online checkpoints racing the workers, coherent
// crashes landing mid-traffic and mid-checkpoint, and a media-fault storm
// (decay + transient read errors on disk A) armed for the duration of every
// post-crash recovery. Disk B stays healthy, so recovery must succeed; the
// reconciliation inside Run() enforces zero lost-committed and zero partial
// actions, and VerifyAfterCrash re-checks the rebased oracle end to end.
class CrashStormSeedSweep : public testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CrashStormSeedSweep,
                         testing::Range<std::uint64_t>(100, 164));

TEST_P(CrashStormSeedSweep, DurablePrefixSurvivesTheStorm) {
  // A failing seed ships its per-thread event windows with the failure output
  // (and into the CI artifact).
  ScopedFlightRecorderDumpOnFailure dump_guard;
  const std::uint64_t seed = GetParam();
  SimWorld world(StormWorld(2, seed, MediumKind::kDuplexed));
  WorkloadConfig config;
  config.seed = seed;
  config.threads = 3;
  config.objects_per_guardian = 6;
  config.abort_probability = 0.1;
  config.crash_probability = 0.1;
  // Transient probability stays low: CarefulRead retries only 4 times, and
  // the fault storm must never make BOTH replicas unreadable.
  DiskFaultPlan storm;
  storm.decay_on_read_probability = 0.05;
  storm.transient_read_error_probability = 0.01;
  config.recovery_faults = storm;
  CheckpointPolicyConfig checkpoint;
  checkpoint.log_growth_bytes = 4 * 1024;  // frequent: crashes land mid-checkpoint
  config.checkpoint = checkpoint;
  config.checkpoint_mode = CheckpointMode::kOnline;

  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(60);
  ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.ToString();
  EXPECT_GE(driver.stats().crashes, 1u) << "seed " << seed;
  EXPECT_GT(driver.stats().committed, 0u) << "seed " << seed;
  EXPECT_EQ(driver.stats().per_thread_failures.size(), 3u);
  // Every attempt is accounted for: committed, aborted, or cut short.
  EXPECT_GE(driver.stats().attempted,
            driver.stats().committed + driver.stats().aborted);
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << "seed " << seed << ": " << checked.status().ToString();
}

// The sharded E14 storm: the same 64-seed sweep against guardians whose
// stable state is partitioned across four log shards with independent force
// queues. Checkpoints stay off (the cross-shard swap barrier is not
// implemented; Run() rejects the combination), and the reconciliation runs
// the relaxed set-based oracle — durability is no longer prefix-closed
// across shards, but committed-durable actions must still survive atomically
// on every shard they touched.
class ShardedCrashStormSeedSweep : public testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedCrashStormSeedSweep,
                         testing::Range<std::uint64_t>(200, 264));

TEST_P(ShardedCrashStormSeedSweep, ShardedDurableStateSurvivesTheStorm) {
  ScopedFlightRecorderDumpOnFailure dump_guard;
  const std::uint64_t seed = GetParam();
  SimWorldConfig world_config = StormWorld(2, seed, MediumKind::kDuplexed);
  world_config.log_shards = 4;
  SimWorld world(world_config);
  WorkloadConfig config;
  config.seed = seed;
  config.threads = 3;
  config.objects_per_guardian = 6;
  config.abort_probability = 0.1;
  config.crash_probability = 0.1;
  DiskFaultPlan storm;
  storm.decay_on_read_probability = 0.05;
  storm.transient_read_error_probability = 0.01;
  config.recovery_faults = storm;

  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(60);
  ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.ToString();
  EXPECT_GE(driver.stats().crashes, 1u) << "seed " << seed;
  EXPECT_GT(driver.stats().committed, 0u) << "seed " << seed;
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << "seed " << seed << ": " << checked.status().ToString();
}

TEST(CrashStorm, ShardedRunRejectsCheckpoints) {
  SimWorldConfig world_config = StormWorld(1, 55, MediumKind::kInMemory);
  world_config.log_shards = 4;
  SimWorld world(world_config);
  WorkloadConfig config;
  config.seed = 55;
  config.threads = 2;
  CheckpointPolicyConfig checkpoint;
  checkpoint.log_growth_bytes = 4 * 1024;
  config.checkpoint = checkpoint;
  config.checkpoint_mode = CheckpointMode::kOnline;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  EXPECT_EQ(driver.Run(10).code(), ErrorCode::kInvalidArgument);
}

// Stop-the-world checkpoints under the same storm: the service holds the
// guardian mutex across the whole checkpoint, so the crash must find it at a
// hook boundary (capture/build) rather than wedged against parked workers.
TEST(CrashStorm, StopTheWorldCheckpointsAlsoSurvive) {
  SimWorld world(StormWorld(2, 77, MediumKind::kInMemory));
  WorkloadConfig config;
  config.seed = 77;
  config.threads = 3;
  config.crash_probability = 0.08;
  CheckpointPolicyConfig checkpoint;
  checkpoint.log_growth_bytes = 4 * 1024;
  config.checkpoint = checkpoint;
  config.checkpoint_mode = CheckpointMode::kStopTheWorld;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(90);
  ASSERT_TRUE(s.ok()) << s.ToString();
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

// ---------------------------------------------------------------------------
// The flight recorder at the crash
// ---------------------------------------------------------------------------

// The `a` payload of every `name` event in the dump (a = action sequence for
// commit.stage / commit.durable).
std::set<std::string> EventArgAs(const std::string& dump, const std::string& name) {
  std::set<std::string> out;
  const std::string needle = " " + name + " a=";
  std::istringstream in(dump);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos) {
      continue;
    }
    std::size_t start = pos + needle.size();
    std::size_t end = line.find(' ', start);
    out.insert(line.substr(start, end - start));
  }
  return out;
}

// commit.durable always follows its commit.stage on the same worker's ring,
// so a stage whose sequence has no durable event anywhere in the dump is an
// action that was staged but not yet durability-confirmed when the world
// died — exactly the entries the post-crash reconciler rules on.
bool DumpShowsStagedButUndurable(const std::string& dump) {
  std::set<std::string> staged = EventArgAs(dump, "commit.stage");
  std::set<std::string> durable = EventArgAs(dump, "commit.durable");
  for (const std::string& seq : staged) {
    if (!durable.contains(seq)) {
      return true;
    }
  }
  return false;
}

TEST(FlightRecorder, CrashDumpShowsStagedButUndurableEntries) {
  // A coherent crash parks every worker; one cut down between staging its
  // commit and confirming durability leaves a commit.stage with no matching
  // commit.durable in its ring — the forensic signature the flight recorder
  // exists to preserve. Thread scheduling decides which run catches a worker
  // inside that window, so sweep seeds until one does.
  bool found = false;
  std::uint64_t crashes_seen = 0;
  for (std::uint64_t seed = 300; seed < 324 && !found; ++seed) {
    obs::ResetTraceForTest();
    SimWorld world(StormWorld(2, seed, MediumKind::kInMemory));
    WorkloadConfig config;
    config.seed = seed;
    config.threads = 3;
    config.crash_probability = 0.15;
    WorkloadDriver driver(&world, config);
    ASSERT_TRUE(driver.Setup().ok());
    Status s = driver.Run(60);
    ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.ToString();
    if (driver.stats().crashes == 0) {
      continue;
    }
    crashes_seen += driver.stats().crashes;
    const std::string& dump = driver.last_crash_dump();
    ASSERT_NE(dump.find("=== flight recorder"), std::string::npos) << "seed " << seed;
    found = DumpShowsStagedButUndurable(dump);
  }
  ASSERT_GE(crashes_seen, 1u);
  EXPECT_TRUE(found);
}

// One worker thread: no scheduling freedom in the event stream, so the dump
// captured at a seeded crash is a pure function of the seed (events carry
// logical payloads only — never wall-clock values).
std::string RunStormAndTakeCrashDump(std::uint64_t seed) {
  obs::ResetTraceForTest();
  SimWorld world(StormWorld(2, seed, MediumKind::kInMemory));
  WorkloadConfig config;
  config.seed = seed;
  config.threads = 1;
  config.crash_probability = 0.25;
  WorkloadDriver driver(&world, config);
  EXPECT_TRUE(driver.Setup().ok());
  Status s = driver.Run(40);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(driver.stats().crashes, 1u);
  return driver.last_crash_dump();
}

TEST(FlightRecorder, SameSeedProducesIdenticalCrashDumps) {
  std::string first = RunStormAndTakeCrashDump(4242);
  std::string second = RunStormAndTakeCrashDump(4242);
  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.find("commit.stage"), std::string::npos);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace argus
