#include <gtest/gtest.h>
TEST(Placeholder_shadow_test, Pending) { SUCCEED(); }
