// Property tests for ONLINE housekeeping: the three checkpoint phases
// (capture / build / swap) interleaved with live commits.
//
// Three families:
//
//  1. A seeded scheduler advances concurrent action machines (write →
//     stage-prepare → stage-outcome → epoch-checked wait) one micro-step per
//     tick, and a checkpoint machine through capture → build → catch-up →
//     swap at randomized points between them. The history then crashes and
//     recovers. Invariant: the recovered committed state equals a serial
//     oracle replay of the durably-committed actions in stage order — where
//     "durable" means staged before the last completed swap (the barrier
//     forces and carries the whole pre-swap suffix) or below the final log's
//     durable watermark — and the V1–V6 structural invariants hold.
//
//  2. A crash matrix over the swap barrier itself: the same deterministic
//     history is crashed at every step of CompleteCheckpointSwap (after
//     quiesce, before each stage-2 entry copy, after the new-log force,
//     after the swap, after the pending rewrite). Every crash point must
//     recover to the same committed state: the swap is atomic — the guardian
//     lands in a valid pre-swap or post-swap state, never in between.
//
//  3. Real threads: the concurrent workload driver with a live checkpoint
//     service (both online and stop-the-world), verified against its model
//     after a full crash. This is the TSan target for the whole feature.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/recovery/validate.h"
#include "src/tpc/workload.h"
#include "tests/test_support.h"

namespace argus {
namespace {

constexpr int kAtomicVars = 5;
constexpr int kMutexVars = 2;
constexpr std::size_t kConcurrentActions = 4;
constexpr std::size_t kActionBudget = 60;

std::string AtomicName(int i) { return "a" + std::to_string(i); }
std::string MutexName(int i) { return "m" + std::to_string(i); }

RecoverySystemConfig GroupCommitConfig() {
  RecoverySystemConfig config = MemConfig(LogMode::kHybrid);
  config.group_commit = FlushCoordinatorConfig{};  // flush immediately
  return config;
}

// ---------------------------------------------------------------------------
// Family 1: checkpoint phases interleaved with commits by a seeded scheduler.
// ---------------------------------------------------------------------------

struct Params {
  HousekeepingMethod method;
  std::uint64_t seed;
};

std::string ParamName(const testing::TestParamInfo<Params>& info) {
  return std::string(info.param.method == HousekeepingMethod::kSnapshot ? "snapshot"
                                                                        : "compaction") +
         "_seed" + std::to_string(info.param.seed);
}

class OnlineCheckpointPropertyTest : public testing::TestWithParam<Params> {};

INSTANTIATE_TEST_SUITE_P(Sweep, OnlineCheckpointPropertyTest,
                         testing::Values(Params{HousekeepingMethod::kSnapshot, 1},
                                         Params{HousekeepingMethod::kSnapshot, 2},
                                         Params{HousekeepingMethod::kSnapshot, 3},
                                         Params{HousekeepingMethod::kSnapshot, 4},
                                         Params{HousekeepingMethod::kSnapshot, 5},
                                         Params{HousekeepingMethod::kCompaction, 1},
                                         Params{HousekeepingMethod::kCompaction, 2},
                                         Params{HousekeepingMethod::kCompaction, 3},
                                         Params{HousekeepingMethod::kCompaction, 4},
                                         Params{HousekeepingMethod::kCompaction, 5}),
                         ParamName);

struct Machine {
  enum class Phase { kStart, kWritten, kPrepared, kOutcomeStaged, kDone };
  ActionId aid;
  Phase phase = Phase::kStart;
  std::map<std::string, std::int64_t> atomic_writes;
  std::map<std::string, std::int64_t> mutex_writes;
  LogAddress prepare_address = LogAddress::Null();
  LogAddress outcome_address = LogAddress::Null();
  // Completed-swap count when the entry was staged: entries from earlier
  // generations were forced and carried over by the barrier, so they are
  // durable no matter where the final log's watermark lands.
  std::uint64_t prepare_generation = 0;
  std::uint64_t outcome_generation = 0;
  std::uint64_t stage_epoch = 0;  // durability epoch at outcome-stage time
  bool committed = false;
};

TEST_P(OnlineCheckpointPropertyTest, RecoveredStateEqualsOracleAcrossSwaps) {
  const Params params = GetParam();
  Rng rng(params.seed * 977 + 13);
  StorageHarness h(GroupCommitConfig());

  {
    ActionId t0 = Aid(1);
    for (int i = 0; i < kAtomicVars; ++i) {
      RecoverableObject* obj = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(0));
      ASSERT_TRUE(h.BindStable(t0, AtomicName(i), obj).ok());
    }
    for (int i = 0; i < kMutexVars; ++i) {
      RecoverableObject* obj = h.ctx(t0).CreateMutex(h.heap(), Value::Int(0));
      ASSERT_TRUE(h.BindStable(t0, MutexName(i), obj).ok());
    }
    ASSERT_TRUE(h.PrepareAndCommit(t0).ok());
  }

  std::vector<Machine> commit_order;
  std::vector<Machine> prepare_order;
  std::vector<Machine> live(kConcurrentActions);
  std::map<ActionId, Machine> all;

  // The checkpoint machine's in-flight state.
  std::optional<CheckpointCapture> capture;
  std::unique_ptr<CheckpointBuilder> builder;
  std::uint64_t generation = 0;

  std::uint64_t next_seq = 10;
  std::size_t started = 0;
  const std::uint64_t crash_tick = 40 + rng.NextBelow(400);

  auto start_machine = [&](Machine& m) {
    m = Machine{};
    m.aid = Aid(next_seq++);
    ++started;
  };
  for (Machine& m : live) {
    start_machine(m);
  }

  for (std::uint64_t tick = 0; tick < crash_tick; ++tick) {
    bool advance_checkpoint = rng.NextBool(0.12);
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i].phase != Machine::Phase::kDone) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty()) {
      // Action budget exhausted. Spend the remaining ticks completing at
      // least one swap, so every seed exercises the interleaving property.
      if (generation >= 1) {
        break;
      }
      advance_checkpoint = true;
    }

    // Advance the checkpoint machine one phase instead of an action — this
    // is what scatters capture/build/swap across the history.
    if (advance_checkpoint) {
      if (builder != nullptr) {
        if (rng.NextBool(0.5)) {
          ASSERT_TRUE(builder->CatchUp().ok());
        }
        Status s = h.rs().CompleteCheckpointSwap(std::move(builder));
        ASSERT_TRUE(s.ok()) << s.ToString();
        ++generation;
      } else if (capture.has_value()) {
        Result<std::unique_ptr<CheckpointBuilder>> built =
            h.rs().BuildCheckpoint(std::move(*capture));
        ASSERT_TRUE(built.ok()) << built.status().ToString();
        builder = std::move(built.value());
        capture.reset();
      } else {
        Result<CheckpointCapture> captured = h.rs().CaptureCheckpoint(params.method);
        ASSERT_TRUE(captured.ok()) << captured.status().ToString();
        capture = std::move(captured.value());
      }
      continue;
    }

    Machine& m = live[candidates[rng.NextBelow(candidates.size())]];

    switch (m.phase) {
      case Machine::Phase::kStart: {
        int k = static_cast<int>(rng.NextInRange(1, 2));
        bool blocked = false;
        for (int j = 0; j < k; ++j) {
          std::string name = AtomicName(static_cast<int>(rng.NextBelow(kAtomicVars)));
          std::int64_t v = static_cast<std::int64_t>(rng.NextBelow(1000));
          Status s = h.ctx(m.aid).WriteObject(h.StableVar(name), Value::Int(v));
          if (!s.ok()) {
            blocked = true;
            break;
          }
          m.atomic_writes[name] = v;
        }
        if (!blocked && rng.NextBool(0.4)) {
          std::string name = MutexName(static_cast<int>(rng.NextBelow(kMutexVars)));
          std::int64_t v = static_cast<std::int64_t>(rng.NextBelow(1000));
          if (h.ctx(m.aid).MutateMutex(h.StableVar(name), [&](Value& mv) {
                 mv = Value::Int(v);
               }).ok()) {
            m.mutex_writes[name] = v;
          }
        }
        if (blocked) {
          h.ctx(m.aid).AbortVolatile(h.heap());
          m.phase = Machine::Phase::kDone;
        } else {
          m.phase = Machine::Phase::kWritten;
        }
        break;
      }
      case Machine::Phase::kWritten: {
        if (rng.NextBool(0.15)) {
          Result<std::optional<LogAddress>> staged = h.rs().StageAbort(m.aid);
          ASSERT_TRUE(staged.ok());
          EXPECT_FALSE(staged.value().has_value());
          h.ctx(m.aid).AbortVolatile(h.heap());
          m.phase = Machine::Phase::kDone;
          break;
        }
        if (rng.NextBool(0.25)) {
          // Early prepare; if a swap lands before this machine prepares, the
          // pending data entries must be rewritten into the new log.
          Result<ModifiedObjectsSet> leftover = h.rs().WriteEntry(m.aid, h.ctx(m.aid).TakeMos());
          ASSERT_TRUE(leftover.ok());
          h.ctx(m.aid).AddToMos(leftover.value());
        }
        Result<LogAddress> prepared = h.rs().StagePrepare(m.aid, h.ctx(m.aid).TakeMos());
        ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
        m.prepare_address = prepared.value();
        m.prepare_generation = generation;
        m.phase = Machine::Phase::kPrepared;
        prepare_order.push_back(m);
        all[m.aid] = m;
        break;
      }
      case Machine::Phase::kPrepared: {
        if (rng.NextBool(0.2)) {
          Result<std::optional<LogAddress>> staged = h.rs().StageAbort(m.aid);
          ASSERT_TRUE(staged.ok());
          ASSERT_TRUE(staged.value().has_value());
          m.outcome_address = *staged.value();
          m.committed = false;
          h.ctx(m.aid).AbortVolatile(h.heap());
        } else {
          Result<LogAddress> committed = h.rs().StageCommit(m.aid);
          ASSERT_TRUE(committed.ok());
          m.outcome_address = committed.value();
          m.committed = true;
          h.ctx(m.aid).CommitVolatile(h.heap());
          commit_order.push_back(m);
        }
        m.outcome_generation = generation;
        m.stage_epoch = h.rs().durability_epoch();
        all[m.aid] = m;
        m.phase = Machine::Phase::kOutcomeStaged;
        break;
      }
      case Machine::Phase::kOutcomeStaged: {
        if (rng.NextBool(0.7)) {
          // The epoch-checked wait: if a swap retired the log this machine
          // staged on, the barrier already forced it — Ok, immediately.
          ASSERT_TRUE(h.rs().WaitDurable(m.outcome_address, m.stage_epoch).ok());
        }
        m.phase = Machine::Phase::kDone;
        if (started < kActionBudget) {
          start_machine(m);
        }
        break;
      }
      case Machine::Phase::kDone:
        break;
    }
  }
  builder.reset();
  capture.reset();
  // With ~12% of several hundred ticks going to the checkpoint machine, every
  // seed completes at least one full capture→build→swap cycle; a zero here
  // means the interleaving property was never actually exercised.
  EXPECT_GE(generation, 1u);

  const std::uint64_t durable = h.rs().log().durable_size();
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  auto is_durable = [&](std::uint64_t entry_generation, LogAddress address) {
    return entry_generation < generation || address.offset < durable;
  };

  std::map<std::string, std::int64_t> oracle_atomic;
  std::map<std::string, std::int64_t> oracle_mutex;
  for (int i = 0; i < kAtomicVars; ++i) {
    oracle_atomic[AtomicName(i)] = 0;
  }
  for (int i = 0; i < kMutexVars; ++i) {
    oracle_mutex[MutexName(i)] = 0;
  }
  for (const Machine& m : commit_order) {
    if (is_durable(m.outcome_generation, m.outcome_address)) {
      for (const auto& [name, v] : m.atomic_writes) {
        oracle_atomic[name] = v;
      }
    }
  }
  for (const Machine& m : prepare_order) {
    if (is_durable(m.prepare_generation, m.prepare_address)) {
      for (const auto& [name, v] : m.mutex_writes) {
        oracle_mutex[name] = v;
      }
    }
  }

  std::set<ActionId> expected_prepared;
  for (const auto& [aid, m] : all) {
    bool prepared_durable = is_durable(m.prepare_generation, m.prepare_address);
    bool outcome_durable = m.outcome_address != LogAddress::Null() &&
                           is_durable(m.outcome_generation, m.outcome_address);
    if (prepared_durable && !outcome_durable) {
      expected_prepared.insert(aid);
    }
  }
  std::set<ActionId> recovered_prepared;
  for (const auto& [aid, state] : info.value().pt) {
    if (state == ParticipantState::kPrepared) {
      recovered_prepared.insert(aid);
    }
  }
  EXPECT_EQ(recovered_prepared, expected_prepared)
      << "generations=" << generation << " durable=" << durable;

  ValidationReport structural = ValidateRecoveredState(h.heap(), info.value());
  EXPECT_TRUE(structural.clean()) << structural.ToString();

  for (ActionId aid : recovered_prepared) {
    ASSERT_TRUE(h.rs().Abort(aid).ok());
    for (const auto& [uid, entry] : info.value().ot) {
      if (entry.object->is_atomic()) {
        entry.object->AbortAction(aid);
      }
    }
  }

  for (const auto& [name, v] : oracle_atomic) {
    EXPECT_EQ(h.StableVar(name)->base_version(), Value::Int(v))
        << name << " (generations=" << generation << ", durable=" << durable
        << ", crash_tick=" << crash_tick << ")";
  }
  for (const auto& [name, v] : oracle_mutex) {
    EXPECT_EQ(h.StableVar(name)->mutex_value(), Value::Int(v))
        << name << " (generations=" << generation << ", durable=" << durable
        << ", crash_tick=" << crash_tick << ")";
  }
}

// ---------------------------------------------------------------------------
// Family 2: crash at every step of the swap barrier.
// ---------------------------------------------------------------------------

// Deterministic history: a pre-capture commit, then (post-capture, so stage 2
// must carry them) another commit, an undecided prepared action, and an
// early-prepared action. Whatever step the swap dies at, recovery must see
// a0=10, m0=5 (pre-capture), a1=20 (post-capture), a2 undecided (PT lists
// p1), a3 untouched.
class SwapCrashScenario {
 public:
  SwapCrashScenario() : h_(GroupCommitConfig()) {
    ActionId t0 = Aid(1);
    for (int i = 0; i < 4; ++i) {
      RecoverableObject* obj = h_.ctx(t0).CreateAtomic(h_.heap(), Value::Int(0));
      ARGUS_CHECK(h_.BindStable(t0, AtomicName(i), obj).ok());
    }
    RecoverableObject* m0 = h_.ctx(t0).CreateMutex(h_.heap(), Value::Int(0));
    ARGUS_CHECK(h_.BindStable(t0, MutexName(0), m0).ok());
    ARGUS_CHECK(h_.PrepareAndCommit(t0).ok());

    ActionId c1 = Aid(10);
    ARGUS_CHECK(h_.ctx(c1).WriteObject(h_.StableVar(AtomicName(0)), Value::Int(10)).ok());
    ARGUS_CHECK(
        h_.ctx(c1).MutateMutex(h_.StableVar(MutexName(0)), [](Value& v) { v = Value::Int(5); })
            .ok());
    ARGUS_CHECK(h_.PrepareAndCommit(c1).ok());

    Result<CheckpointCapture> capture = h_.rs().CaptureCheckpoint(HousekeepingMethod::kSnapshot);
    ARGUS_CHECK(capture.ok());
    Result<std::unique_ptr<CheckpointBuilder>> built =
        h_.rs().BuildCheckpoint(std::move(capture.value()));
    ARGUS_CHECK(built.ok());
    builder_ = std::move(built.value());

    // Post-capture traffic: stage 2's carry-over work.
    ActionId c2 = Aid(11);
    ARGUS_CHECK(h_.ctx(c2).WriteObject(h_.StableVar(AtomicName(1)), Value::Int(20)).ok());
    ARGUS_CHECK(h_.PrepareAndCommit(c2).ok());

    prepared_ = Aid(12);
    ARGUS_CHECK(h_.ctx(prepared_).WriteObject(h_.StableVar(AtomicName(2)), Value::Int(30)).ok());
    ARGUS_CHECK(h_.PrepareOnly(prepared_).ok());

    // Early-prepared, never prepared: pending pairs at swap time.
    ActionId e1 = Aid(13);
    ARGUS_CHECK(h_.ctx(e1).WriteObject(h_.StableVar(AtomicName(3)), Value::Int(40)).ok());
    Result<ModifiedObjectsSet> leftover = h_.rs().WriteEntry(e1, h_.ctx(e1).TakeMos());
    ARGUS_CHECK(leftover.ok());
  }

  // Runs the swap with `hook`; returns its status.
  Status Swap(RecoverySystem::SwapCrashHook hook) {
    h_.rs().SetSwapCrashHook(std::move(hook));
    return h_.rs().CompleteCheckpointSwap(std::move(builder_));
  }

  // Crash, recover, and check the committed state every crash point must
  // agree on.
  void VerifyRecovered() {
    Result<RecoveryInfo> info = h_.CrashAndRecover();
    ASSERT_TRUE(info.ok()) << info.status().ToString();

    std::set<ActionId> recovered_prepared;
    for (const auto& [aid, state] : info.value().pt) {
      if (state == ParticipantState::kPrepared) {
        recovered_prepared.insert(aid);
      }
    }
    EXPECT_EQ(recovered_prepared, std::set<ActionId>{prepared_});

    ValidationReport structural = ValidateRecoveredState(h_.heap(), info.value());
    EXPECT_TRUE(structural.clean()) << structural.ToString();

    for (ActionId aid : recovered_prepared) {
      ASSERT_TRUE(h_.rs().Abort(aid).ok());
      for (const auto& [uid, entry] : info.value().ot) {
        if (entry.object->is_atomic()) {
          entry.object->AbortAction(aid);
        }
      }
    }

    EXPECT_EQ(h_.StableVar(AtomicName(0))->base_version(), Value::Int(10));
    EXPECT_EQ(h_.StableVar(AtomicName(1))->base_version(), Value::Int(20));
    EXPECT_EQ(h_.StableVar(AtomicName(2))->base_version(), Value::Int(0));
    EXPECT_EQ(h_.StableVar(AtomicName(3))->base_version(), Value::Int(0));
    EXPECT_EQ(h_.StableVar(MutexName(0))->mutex_value(), Value::Int(5));
  }

 private:
  StorageHarness h_;
  std::unique_ptr<CheckpointBuilder> builder_;
  ActionId prepared_;
};

TEST(SwapCrashMatrixTest, EveryCrashPointRecoversToAValidState) {
  // Control run: count the stage-2 entries and confirm a hook-free swap
  // completes and recovers correctly.
  std::uint64_t stage2_entries = 0;
  {
    SwapCrashScenario control;
    Status s = control.Swap([&](const char* step, std::uint64_t index) {
      if (std::string(step) == "stage2") {
        stage2_entries = index + 1;
      }
      return true;
    });
    ASSERT_TRUE(s.ok()) << s.ToString();
    control.VerifyRecovered();
  }
  ASSERT_GT(stage2_entries, 0u) << "scenario staged no post-capture outcome entries";

  struct CrashPoint {
    std::string step;
    std::uint64_t index;
  };
  std::vector<CrashPoint> points = {{"quiesced", 0}, {"forced", 0}, {"swapped", 0},
                                    {"rewritten", 0}};
  for (std::uint64_t i = 0; i < stage2_entries; ++i) {
    points.push_back({"stage2", i});
  }

  for (const CrashPoint& point : points) {
    SCOPED_TRACE("crash at " + point.step + "[" + std::to_string(point.index) + "]");
    SwapCrashScenario scenario;
    Status s = scenario.Swap([&](const char* step, std::uint64_t index) {
      return !(point.step == step && point.index == index);
    });
    EXPECT_FALSE(s.ok()) << "hook should have aborted the swap";
    scenario.VerifyRecovered();
  }
}

// ---------------------------------------------------------------------------
// Family 3: real threads — the workload driver with a live checkpoint
// service. Run under TSan in CI.
// ---------------------------------------------------------------------------

void RunConcurrentWorkloadWithCheckpoints(CheckpointMode mode) {
  SimWorldConfig world_config;
  world_config.guardian_count = 2;
  world_config.mode = LogMode::kHybrid;
  world_config.seed = 71;
  world_config.group_commit = FlushCoordinatorConfig{};
  SimWorld world(world_config);

  WorkloadConfig config;
  config.seed = 71;
  config.threads = 4;
  config.abort_probability = 0.05;
  config.early_prepare_probability = 0.2;
  CheckpointPolicyConfig checkpoint;
  checkpoint.log_growth_bytes = 8 * 1024;
  checkpoint.entries_since_checkpoint = 0;
  config.checkpoint = checkpoint;
  config.checkpoint_mode = mode;
  config.checkpoint_poll_interval = std::chrono::milliseconds(1);

  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  const std::uint64_t ckpt_before = obs::GetCounter("checkpoint.count")->Value();
  Status s = driver.Run(1200);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(driver.stats().committed, 0u);
  EXPECT_GT(driver.stats().checkpoints, 0u)
      << "policy never fired; the test exercised nothing";
  // Forward progress as the registry sees it: every completed checkpoint
  // ticks checkpoint.count at the same site that records the phase
  // histograms, so the services' stats and the process-wide metric agree
  // even with the 1 ms poll racing the min-gap fairness floor.
  EXPECT_GE(obs::GetCounter("checkpoint.count")->Value() - ckpt_before,
            driver.stats().checkpoints);

  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  EXPECT_GT(checked.value(), 0u);
}

TEST(ConcurrentCheckpointWorkloadTest, OnlineCheckpointsRaceCommits) {
  RunConcurrentWorkloadWithCheckpoints(CheckpointMode::kOnline);
}

TEST(ConcurrentCheckpointWorkloadTest, StopTheWorldCheckpointsRaceCommits) {
  RunConcurrentWorkloadWithCheckpoints(CheckpointMode::kStopTheWorld);
}

TEST(ConcurrentCheckpointWorkloadTest, RequiresGroupCommit) {
  SimWorldConfig world_config;
  world_config.guardian_count = 1;
  world_config.mode = LogMode::kHybrid;
  world_config.seed = 7;
  SimWorld world(world_config);  // no group commit

  WorkloadConfig config;
  config.seed = 7;
  config.threads = 2;
  config.checkpoint = CheckpointPolicyConfig{};
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(10);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace argus
