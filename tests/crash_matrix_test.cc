#include <gtest/gtest.h>
TEST(Placeholder_crash_matrix_test, Pending) { SUCCEED(); }
