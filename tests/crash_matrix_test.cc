// Crash matrix for a coalesced group-commit force over the full duplexed
// stack: a batch of actions stages prepare+commit entries without forcing,
// then one physical force covers the batch — and the "machine crashes"
// (torn write) at EVERY duplexed write step inside that force, on each
// replica disk.
//
// The invariant under test is the crash-equivalence argument for group
// commit: a coalesced force is one medium Append, which writes data pages
// first and the superblock last, each duplexed A-then-B. So the only legal
// recovered states are the pre-batch state and the post-batch state — never
// a torn batch — and which of the two survives is determined by where the
// tear lands:
//   - any data-page tear (either disk): Append aborts before the superblock,
//     so the old length survives → pre-batch state;
//   - superblock tear on replica A: reads prefer A, Repair copies intact B
//     (old) over torn A → pre-batch state;
//   - superblock tear on replica B: A already holds the new superblock and
//     reads prefer it; Repair copies A over torn B → post-batch state.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/recovery/validate.h"
#include "src/stable/duplexed_medium.h"
#include "tests/test_support.h"

namespace argus {
namespace {

constexpr int kSlots = 3;
constexpr std::int64_t kOldValue = 7;
constexpr std::int64_t kNewBase = 100;

std::string Slot(int i) { return "slot" + std::to_string(i); }

// A storage stack over the duplexed medium with a hook to the live medium so
// the matrix can plant fault plans on the underlying simulated disks.
struct DuplexHarness {
  explicit DuplexHarness(LogMode mode) {
    RecoverySystemConfig config;
    config.mode = mode;
    config.medium_factory = [this] {
      auto m = std::make_unique<DuplexedStableMedium>(/*seed=*/11);
      medium = m.get();
      return m;
    };
    harness = std::make_unique<StorageHarness>(config);
  }

  DuplexedStableMedium* medium = nullptr;
  std::unique_ptr<StorageHarness> harness;
};

// Commits the baseline state: kSlots atomic stable variables, all kOldValue.
void SetupBaseline(StorageHarness& h) {
  ActionId t0 = Aid(1);
  for (int i = 0; i < kSlots; ++i) {
    RecoverableObject* obj = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(kOldValue));
    ASSERT_TRUE(h.BindStable(t0, Slot(i), obj).ok());
  }
  ASSERT_TRUE(h.PrepareAndCommit(t0).ok());
}

// Stages (without forcing) one prepare+commit per slot: the coalesced batch.
// Volatile commit happens at stage time, as in the concurrent driver.
void StageBatch(StorageHarness& h) {
  for (int i = 0; i < kSlots; ++i) {
    ActionId aid = Aid(static_cast<std::uint64_t>(10 + i));
    ASSERT_TRUE(h.ctx(aid).WriteObject(h.StableVar(Slot(i)), Value::Int(kNewBase + i)).ok());
    Result<LogAddress> prepared = h.rs().StagePrepare(aid, h.ctx(aid).TakeMos());
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    Result<LogAddress> committed = h.rs().StageCommit(aid);
    ASSERT_TRUE(committed.ok()) << committed.status().ToString();
    h.ctx(aid).CommitVolatile(h.heap());
  }
}

void ExpectState(StorageHarness& h, bool new_state, const std::string& context) {
  for (int i = 0; i < kSlots; ++i) {
    RecoverableObject* obj = h.StableVar(Slot(i));
    ASSERT_NE(obj, nullptr) << context << ": " << Slot(i);
    EXPECT_EQ(obj->base_version(), Value::Int(new_state ? kNewBase + i : kOldValue))
        << context << ": " << Slot(i);
  }
}

// Counts the physical writes one disk performs during the coalesced force
// (identical for both disks: the store writes A then B for every page).
std::uint64_t WritesPerDiskDuringForce(LogMode mode) {
  DuplexHarness d(mode);
  SetupBaseline(*d.harness);
  StageBatch(*d.harness);
  std::uint64_t before = d.medium->store().disk_a().writes();
  EXPECT_TRUE(d.harness->rs().log().Force().ok());
  return d.medium->store().disk_a().writes() - before;
}

class CrashMatrixTest : public testing::TestWithParam<LogMode> {};

INSTANTIATE_TEST_SUITE_P(Modes, CrashMatrixTest,
                         testing::Values(LogMode::kSimple, LogMode::kHybrid),
                         [](const testing::TestParamInfo<LogMode>& info) {
                           return info.param == LogMode::kSimple ? std::string("simple")
                                                                 : std::string("hybrid");
                         });

TEST_P(CrashMatrixTest, TornWriteAtEveryStepOfCoalescedForceYieldsLegalPrefix) {
  const LogMode mode = GetParam();
  const std::uint64_t writes_per_disk = WritesPerDiskDuringForce(mode);
  ASSERT_GE(writes_per_disk, 2u) << "need at least one data page plus the superblock";

  for (int disk = 0; disk < 2; ++disk) {
    for (std::uint64_t step = 0; step < writes_per_disk; ++step) {
      std::string context = std::string("disk ") + (disk == 0 ? "A" : "B") + ", write " +
                            std::to_string(step) + "/" + std::to_string(writes_per_disk - 1);

      DuplexHarness d(mode);
      SetupBaseline(*d.harness);
      StageBatch(*d.harness);

      // Crash mid-force: the step-th write on the chosen disk tears.
      DiskFaultPlan plan;
      plan.tear_write_at = static_cast<std::int64_t>(step);
      SimulatedDisk& victim =
          disk == 0 ? d.medium->store().disk_a() : d.medium->store().disk_b();
      victim.set_fault_plan(plan);

      Status forced = d.harness->rs().log().Force();
      EXPECT_FALSE(forced.ok()) << context;
      EXPECT_EQ(forced.code(), ErrorCode::kUnavailable) << context;

      // The machine is dead; the fault plan dies with the incident.
      victim.set_fault_plan(DiskFaultPlan{});
      Result<RecoveryInfo> info = d.harness->CrashAndRecover();
      ASSERT_TRUE(info.ok()) << context << ": " << info.status().ToString();

      // The superblock is the last write per disk; only a tear on replica B's
      // superblock lets the batch survive (replica A already has it).
      const bool superblock_step = step == writes_per_disk - 1;
      const bool batch_survives = disk == 1 && superblock_step;
      ExpectState(*d.harness, batch_survives, context);

      // Tables must match the same prefix: with the batch, every batch action
      // is committed; without it, no trace of any (never a partial batch).
      // Nothing may be left dangling in the prepared state either way.
      for (const auto& [aid, state] : info.value().pt) {
        EXPECT_NE(state, ParticipantState::kPrepared) << context << " " << to_string(aid);
      }
      for (int i = 0; i < kSlots; ++i) {
        ActionId aid = Aid(static_cast<std::uint64_t>(10 + i));
        auto it = info.value().pt.find(aid);
        if (batch_survives) {
          ASSERT_NE(it, info.value().pt.end()) << context << " " << to_string(aid);
          EXPECT_EQ(it->second, ParticipantState::kCommitted) << context;
        } else {
          EXPECT_EQ(it, info.value().pt.end()) << context << " " << to_string(aid);
        }
      }

      ValidationReport structural = ValidateRecoveredState(d.harness->heap(), info.value());
      EXPECT_TRUE(structural.clean()) << context << "\n" << structural.ToString();
    }
  }
}

TEST_P(CrashMatrixTest, CrashBeforeForceLosesWholeBatch) {
  DuplexHarness d(GetParam());
  SetupBaseline(*d.harness);
  StageBatch(*d.harness);
  // No force at all: the staged batch is purely volatile.
  Result<RecoveryInfo> info = d.harness->CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ExpectState(*d.harness, /*new_state=*/false, "no force");
  for (const auto& [aid, state] : info.value().pt) {
    EXPECT_NE(state, ParticipantState::kPrepared);
  }
}

TEST_P(CrashMatrixTest, ForceAfterRecoveryResumesCleanly) {
  // After a torn-force crash and recovery, the guardian must be able to run
  // and force new actions on the repaired medium.
  const LogMode mode = GetParam();
  DuplexHarness d(mode);
  SetupBaseline(*d.harness);
  StageBatch(*d.harness);
  DiskFaultPlan plan;
  plan.tear_write_at = 0;
  d.medium->store().disk_a().set_fault_plan(plan);
  EXPECT_FALSE(d.harness->rs().log().Force().ok());
  d.medium->store().disk_a().set_fault_plan(DiskFaultPlan{});
  ASSERT_TRUE(d.harness->CrashAndRecover().ok());

  StorageHarness& h = *d.harness;
  ActionId aid = Aid(50);
  ASSERT_TRUE(h.ctx(aid).WriteObject(h.StableVar(Slot(0)), Value::Int(555)).ok());
  ASSERT_TRUE(h.PrepareAndCommit(aid).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar(Slot(0))->base_version(), Value::Int(555));
}

}  // namespace
}  // namespace argus
