// Property test for group-commit recovery: many actions advance CONCURRENTLY
// through write → stage-prepare → stage-outcome → wait-durable, interleaved
// by a seeded scheduler, and the history crashes at a random tick. The
// stage/force split means the log's staged tail can hold a whole batch of
// undecided work when the crash hits.
//
// Invariant: recovery must reconstruct exactly the durable prefix — the
// recovered atomic state equals a serial oracle replay of the actions whose
// commit entry made it to the medium (in stage order), mutex objects hold
// the last durably-PREPARED value, and the recovered PT lists precisely the
// durably-prepared-but-undecided actions.
//
// This extends randomized_property_test.cc, which drives the same invariant
// through the serial (force-per-operation) API.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/recovery/validate.h"
#include "tests/test_support.h"

namespace argus {
namespace {

constexpr int kAtomicVars = 5;
constexpr int kMutexVars = 2;
constexpr std::size_t kConcurrentActions = 4;  // scheduler slots
constexpr std::size_t kActionBudget = 40;

std::string AtomicName(int i) { return "a" + std::to_string(i); }
std::string MutexName(int i) { return "m" + std::to_string(i); }

struct Params {
  LogMode mode;
  std::uint64_t seed;
};

std::string ParamName(const testing::TestParamInfo<Params>& info) {
  return std::string(info.param.mode == LogMode::kSimple ? "simple" : "hybrid") + "_seed" +
         std::to_string(info.param.seed);
}

class ConcurrentRecoveryTest : public testing::TestWithParam<Params> {};

INSTANTIATE_TEST_SUITE_P(Sweep, ConcurrentRecoveryTest,
                         testing::Values(Params{LogMode::kSimple, 1},
                                         Params{LogMode::kSimple, 2},
                                         Params{LogMode::kSimple, 3},
                                         Params{LogMode::kSimple, 4},
                                         Params{LogMode::kHybrid, 1},
                                         Params{LogMode::kHybrid, 2},
                                         Params{LogMode::kHybrid, 3},
                                         Params{LogMode::kHybrid, 4},
                                         Params{LogMode::kHybrid, 5},
                                         Params{LogMode::kHybrid, 6}),
                         ParamName);

// One in-flight action, advanced micro-step by micro-step by the scheduler.
struct Machine {
  enum class Phase { kStart, kWritten, kPrepared, kOutcomeStaged, kDone };
  ActionId aid;
  Phase phase = Phase::kStart;
  std::map<std::string, std::int64_t> atomic_writes;
  std::map<std::string, std::int64_t> mutex_writes;
  LogAddress prepare_address = LogAddress::Null();
  LogAddress outcome_address = LogAddress::Null();
  bool committed = false;  // valid in kOutcomeStaged/kDone
};

TEST_P(ConcurrentRecoveryTest, RecoveredStateEqualsSerialOracleOfDurablePrefix) {
  const Params params = GetParam();
  Rng rng(params.seed * 131 + 7);
  StorageHarness h(params.mode);

  // Durable baseline.
  {
    ActionId t0 = Aid(1);
    for (int i = 0; i < kAtomicVars; ++i) {
      RecoverableObject* obj = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(0));
      ASSERT_TRUE(h.BindStable(t0, AtomicName(i), obj).ok());
    }
    for (int i = 0; i < kMutexVars; ++i) {
      RecoverableObject* obj = h.ctx(t0).CreateMutex(h.heap(), Value::Int(0));
      ASSERT_TRUE(h.BindStable(t0, MutexName(i), obj).ok());
    }
    ASSERT_TRUE(h.PrepareAndCommit(t0).ok());
  }

  // Oracle inputs, recorded at STAGE time (the log's serialization order).
  std::vector<Machine> commit_order;    // snapshot when the commit entry staged
  std::vector<Machine> prepare_order;   // snapshot when the prepared entry staged
  std::vector<Machine> live(kConcurrentActions);
  std::map<ActionId, Machine> all;      // every action that staged a prepare

  std::uint64_t next_seq = 10;
  std::size_t started = 0;
  const std::uint64_t crash_tick = 10 + rng.NextBelow(220);

  auto start_machine = [&](Machine& m) {
    m = Machine{};
    m.aid = Aid(next_seq++);
    ++started;
  };
  for (Machine& m : live) {
    start_machine(m);
  }

  // The seeded scheduler: each tick advances one randomly chosen action by
  // one micro-step; the crash interrupts wherever the tick counter lands.
  bool crashed = false;
  for (std::uint64_t tick = 0; !crashed; ++tick) {
    if (tick >= crash_tick) {
      crashed = true;
      break;
    }
    // Pick a live, unfinished machine.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i].phase != Machine::Phase::kDone) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty()) {
      break;  // budget exhausted with no crash: still a valid (boring) history
    }
    Machine& m = live[candidates[rng.NextBelow(candidates.size())]];

    switch (m.phase) {
      case Machine::Phase::kStart: {
        int k = static_cast<int>(rng.NextInRange(1, 2));
        bool blocked = false;
        for (int j = 0; j < k; ++j) {
          std::string name = AtomicName(static_cast<int>(rng.NextBelow(kAtomicVars)));
          std::int64_t v = static_cast<std::int64_t>(rng.NextBelow(1000));
          Status s = h.ctx(m.aid).WriteObject(h.StableVar(name), Value::Int(v));
          if (!s.ok()) {
            blocked = true;  // conflict with a concurrent undecided action
            break;
          }
          m.atomic_writes[name] = v;
        }
        if (!blocked && rng.NextBool(0.4)) {
          std::string name = MutexName(static_cast<int>(rng.NextBelow(kMutexVars)));
          std::int64_t v = static_cast<std::int64_t>(rng.NextBelow(1000));
          if (h.ctx(m.aid).MutateMutex(h.StableVar(name), [&](Value& mv) {
                 mv = Value::Int(v);
               }).ok()) {
            m.mutex_writes[name] = v;
          }
        }
        if (blocked) {
          h.ctx(m.aid).AbortVolatile(h.heap());
          m.phase = Machine::Phase::kDone;
        } else {
          m.phase = Machine::Phase::kWritten;
        }
        break;
      }
      case Machine::Phase::kWritten: {
        if (rng.NextBool(0.15)) {
          // Abort before prepare: no durable trace allowed.
          Result<std::optional<LogAddress>> staged = h.rs().StageAbort(m.aid);
          ASSERT_TRUE(staged.ok());
          EXPECT_FALSE(staged.value().has_value());
          h.ctx(m.aid).AbortVolatile(h.heap());
          m.phase = Machine::Phase::kDone;
          break;
        }
        if (params.mode == LogMode::kHybrid && rng.NextBool(0.25)) {
          // Early prepare: stage data entries ahead of the prepared entry.
          Result<ModifiedObjectsSet> leftover = h.rs().WriteEntry(m.aid, h.ctx(m.aid).TakeMos());
          ASSERT_TRUE(leftover.ok());
          h.ctx(m.aid).AddToMos(leftover.value());
        }
        Result<LogAddress> prepared = h.rs().StagePrepare(m.aid, h.ctx(m.aid).TakeMos());
        ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
        m.prepare_address = prepared.value();
        m.phase = Machine::Phase::kPrepared;
        prepare_order.push_back(m);
        all[m.aid] = m;
        break;
      }
      case Machine::Phase::kPrepared: {
        if (rng.NextBool(0.2)) {
          Result<std::optional<LogAddress>> staged = h.rs().StageAbort(m.aid);
          ASSERT_TRUE(staged.ok());
          ASSERT_TRUE(staged.value().has_value());
          m.outcome_address = *staged.value();
          m.committed = false;
          h.ctx(m.aid).AbortVolatile(h.heap());
        } else {
          Result<LogAddress> committed = h.rs().StageCommit(m.aid);
          ASSERT_TRUE(committed.ok());
          m.outcome_address = committed.value();
          m.committed = true;
          h.ctx(m.aid).CommitVolatile(h.heap());
          commit_order.push_back(m);
        }
        all[m.aid] = m;
        m.phase = Machine::Phase::kOutcomeStaged;
        break;
      }
      case Machine::Phase::kOutcomeStaged: {
        // Sometimes the force happens (covering every older staged entry);
        // sometimes the action finishes "in the window" and the crash decides.
        if (rng.NextBool(0.7)) {
          ASSERT_TRUE(h.rs().WaitDurable(m.outcome_address).ok());
        }
        m.phase = Machine::Phase::kDone;
        if (started < kActionBudget) {
          start_machine(m);
        }
        break;
      }
      case Machine::Phase::kDone:
        break;
    }
  }

  // Crash: only the durable prefix survives; the staged tail is lost.
  const std::uint64_t durable = h.rs().log().durable_size();
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  // Serial oracle replay of the durable committed prefix, in stage order.
  std::map<std::string, std::int64_t> oracle_atomic;
  std::map<std::string, std::int64_t> oracle_mutex;
  for (int i = 0; i < kAtomicVars; ++i) {
    oracle_atomic[AtomicName(i)] = 0;
  }
  for (int i = 0; i < kMutexVars; ++i) {
    oracle_mutex[MutexName(i)] = 0;
  }
  for (const Machine& m : commit_order) {
    if (m.outcome_address.offset < durable) {
      for (const auto& [name, v] : m.atomic_writes) {
        oracle_atomic[name] = v;
      }
    }
  }
  for (const Machine& m : prepare_order) {
    if (m.prepare_address.offset < durable) {
      for (const auto& [name, v] : m.mutex_writes) {
        oracle_mutex[name] = v;
      }
    }
  }

  // The recovered PT must list exactly the durably-prepared, undecided
  // actions.
  std::set<ActionId> expected_prepared;
  for (const auto& [aid, m] : all) {
    bool prepared_durable = m.prepare_address.offset < durable;
    bool outcome_durable =
        m.outcome_address != LogAddress::Null() && m.outcome_address.offset < durable;
    if (prepared_durable && !outcome_durable) {
      expected_prepared.insert(aid);
    }
  }
  std::set<ActionId> recovered_prepared;
  for (const auto& [aid, state] : info.value().pt) {
    if (state == ParticipantState::kPrepared) {
      recovered_prepared.insert(aid);
    }
  }
  EXPECT_EQ(recovered_prepared, expected_prepared);

  // Structural invariants before resolving the stragglers.
  ValidationReport structural = ValidateRecoveredState(h.heap(), info.value());
  EXPECT_TRUE(structural.clean()) << structural.ToString();

  // Resolve the undecided prepared actions by aborting them (the participant
  // would learn the outcome from its coordinator; absent one, abort).
  for (ActionId aid : recovered_prepared) {
    ASSERT_TRUE(h.rs().Abort(aid).ok());
    for (const auto& [uid, entry] : info.value().ot) {
      if (entry.object->is_atomic()) {
        entry.object->AbortAction(aid);
      }
    }
  }

  for (const auto& [name, v] : oracle_atomic) {
    EXPECT_EQ(h.StableVar(name)->base_version(), Value::Int(v))
        << name << " (durable=" << durable << ", crash_tick=" << crash_tick << ")";
  }
  for (const auto& [name, v] : oracle_mutex) {
    EXPECT_EQ(h.StableVar(name)->mutex_value(), Value::Int(v))
        << name << " (durable=" << durable << ", crash_tick=" << crash_tick << ")";
  }
}

}  // namespace
}  // namespace argus
