// Tests for the pure-shadowing baseline (§1.2.1).

#include <gtest/gtest.h>

#include "src/shadow/shadow_store.h"
#include "tests/test_support.h"

namespace argus {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out;
  for (char c : s) {
    out.push_back(std::byte{static_cast<unsigned char>(c)});
  }
  return out;
}

ShadowStore MakeStore() {
  return ShadowStore(std::make_unique<InMemoryStableMedium>());
}

TEST(ShadowStore, PrepareCommitReadBack) {
  ShadowStore store = MakeStore();
  ActionId t1 = Aid(1);
  ASSERT_TRUE(store.Prepare(t1, {{Uid{1}, Bytes("v1")}, {Uid{2}, Bytes("v2")}}).ok());
  ASSERT_TRUE(store.Commit(t1).ok());
  EXPECT_EQ(store.ReadObject(Uid{1}).value(), Bytes("v1"));
  EXPECT_EQ(store.ReadObject(Uid{2}).value(), Bytes("v2"));
  EXPECT_EQ(store.object_count(), 2u);
}

TEST(ShadowStore, UncommittedVersionsInvisible) {
  ShadowStore store = MakeStore();
  ActionId t1 = Aid(1);
  ASSERT_TRUE(store.Prepare(t1, {{Uid{1}, Bytes("old")}}).ok());
  ASSERT_TRUE(store.Commit(t1).ok());
  ActionId t2 = Aid(2);
  ASSERT_TRUE(store.Prepare(t2, {{Uid{1}, Bytes("new")}}).ok());
  // Prepared but not committed: the map still points at the old version.
  EXPECT_EQ(store.ReadObject(Uid{1}).value(), Bytes("old"));
  ASSERT_TRUE(store.Commit(t2).ok());
  EXPECT_EQ(store.ReadObject(Uid{1}).value(), Bytes("new"));
}

TEST(ShadowStore, AbortDiscardsIntentions) {
  ShadowStore store = MakeStore();
  ActionId t1 = Aid(1);
  ASSERT_TRUE(store.Prepare(t1, {{Uid{1}, Bytes("keep")}}).ok());
  ASSERT_TRUE(store.Commit(t1).ok());
  ActionId t2 = Aid(2);
  ASSERT_TRUE(store.Prepare(t2, {{Uid{1}, Bytes("drop")}}).ok());
  ASSERT_TRUE(store.Abort(t2).ok());
  EXPECT_EQ(store.ReadObject(Uid{1}).value(), Bytes("keep"));
  EXPECT_TRUE(store.InDoubtActions().empty());
}

TEST(ShadowStore, RecoverRestoresMapAndInDoubt) {
  ShadowStore store = MakeStore();
  ActionId t1 = Aid(1);
  ActionId t2 = Aid(2);
  ASSERT_TRUE(store.Prepare(t1, {{Uid{1}, Bytes("a")}}).ok());
  ASSERT_TRUE(store.Commit(t1).ok());
  ASSERT_TRUE(store.Prepare(t2, {{Uid{2}, Bytes("b")}}).ok());

  // Crash: volatile mirrors are rebuilt from the durable map pointer.
  Result<std::size_t> recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value(), 1u);
  EXPECT_EQ(store.ReadObject(Uid{1}).value(), Bytes("a"));
  // t2 is in doubt (prepared, undecided).
  ASSERT_EQ(store.InDoubtActions().size(), 1u);
  EXPECT_EQ(store.InDoubtActions()[0], t2);
  // Its version is not installed.
  EXPECT_FALSE(store.ReadObject(Uid{2}).ok());
  // A post-recovery commit installs it.
  ASSERT_TRUE(store.Commit(t2).ok());
  EXPECT_EQ(store.ReadObject(Uid{2}).value(), Bytes("b"));
}

TEST(ShadowStore, CommitRewritesWholeMap) {
  // The thesis's core cost claim about shadowing: every commit rewrites the
  // map, so map bytes grow with the TOTAL object count, not the write size.
  ShadowStore store = MakeStore();
  for (std::uint64_t i = 0; i < 100; ++i) {
    ActionId t = Aid(i + 1);
    ASSERT_TRUE(store.Prepare(t, {{Uid{i}, Bytes("x")}}).ok());
    ASSERT_TRUE(store.Commit(t).ok());
  }
  std::uint64_t map_bytes_before = store.stats().map_bytes_written;
  ActionId t = Aid(1000);
  ASSERT_TRUE(store.Prepare(t, {{Uid{0}, Bytes("y")}}).ok());
  ASSERT_TRUE(store.Commit(t).ok());
  std::uint64_t delta = store.stats().map_bytes_written - map_bytes_before;
  // The single-object commit rewrote a map of ~100 entries (16 B each).
  EXPECT_GT(delta, 100u * 16u);
}

TEST(ShadowStore, ReadUnknownObjectFails) {
  ShadowStore store = MakeStore();
  EXPECT_EQ(store.ReadObject(Uid{42}).status().code(), ErrorCode::kNotFound);
}

TEST(ShadowStore, RecoverOnEmptyStore) {
  ShadowStore store = MakeStore();
  Result<std::size_t> recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 0u);
}

TEST(ShadowStore, ManyObjectsSurviveRecovery) {
  ShadowStore store = MakeStore();
  for (std::uint64_t i = 0; i < 50; ++i) {
    ActionId t = Aid(i + 1);
    ASSERT_TRUE(store.Prepare(t, {{Uid{i}, Bytes(std::to_string(i))}}).ok());
    ASSERT_TRUE(store.Commit(t).ok());
  }
  ASSERT_TRUE(store.Recover().ok());
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(store.ReadObject(Uid{i}).value(), Bytes(std::to_string(i)));
  }
}

TEST(ShadowStore, MultiObjectActionIsAtomic) {
  ShadowStore store = MakeStore();
  ActionId t1 = Aid(1);
  ASSERT_TRUE(store.Prepare(t1, {{Uid{1}, Bytes("x1")}, {Uid{2}, Bytes("x2")}}).ok());
  ASSERT_TRUE(store.Commit(t1).ok());
  ActionId t2 = Aid(2);
  ASSERT_TRUE(store.Prepare(t2, {{Uid{1}, Bytes("y1")}, {Uid{2}, Bytes("y2")}}).ok());
  // Crash before commit: recovery must see both old values.
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_EQ(store.ReadObject(Uid{1}).value(), Bytes("x1"));
  EXPECT_EQ(store.ReadObject(Uid{2}).value(), Bytes("x2"));
  // Commit after recovery: both new values appear together.
  ASSERT_TRUE(store.Commit(t2).ok());
  EXPECT_EQ(store.ReadObject(Uid{1}).value(), Bytes("y1"));
  EXPECT_EQ(store.ReadObject(Uid{2}).value(), Bytes("y2"));
}

}  // namespace
}  // namespace argus
