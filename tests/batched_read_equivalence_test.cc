// Scatter-read equivalence suite for the batched StableMedium interface.
//
// Property: the recovered tables are a function of the log's bytes, never of
// the I/O strategy that fetched them. One seeded history, dumped to a real
// file, must recover bit-identically through every read gear — the simulated
// in-memory medium, file-backed serial preads, file-backed preadv scatter
// batches, and (when the kernel allows it) file-backed io_uring — with the
// batch prefetch path on or off. Also pins the SubmitReads contract itself:
// authoritative per-request completion statuses (Ok only over a fully read
// buffer, skipped/abandoned segments stamped non-Ok), and per-segment (not
// per-batch) careful-read fallback on a decayed duplexed replica.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/object/flatten.h"
#include "src/recovery/recovery_algorithms.h"
#include "src/stable/duplexed_medium.h"
#include "src/stable/file_medium.h"
#include "tests/test_support.h"

namespace argus {
namespace {

// ---- Seeded history builder ---------------------------------------------

struct HistoryConfig {
  std::uint64_t seed = 1;
  bool duplexed = false;
  std::uint32_t disk_seed = 9000;
  std::size_t steps = 40;
};

// Deterministic random workload over a guardian stack; identical configs
// build bit-identical logs. A compact sibling of the builder in
// recovery_pipeline_equivalence_test.cc, exercising the same entry mix:
// commits, mutex mutations, undecided prepares, aborts, coordinator records,
// and early-prepared trailing data.
class HistoryBuilder {
 public:
  explicit HistoryBuilder(const HistoryConfig& config) : config_(config) {
    RecoverySystemConfig rs_config;
    rs_config.mode = LogMode::kHybrid;
    if (config.duplexed) {
      std::uint32_t disk_seed = config.disk_seed;
      rs_config.medium_factory = [disk_seed] {
        return std::make_unique<DuplexedStableMedium>(disk_seed);
      };
    } else {
      rs_config.medium_factory = [] { return std::make_unique<InMemoryStableMedium>(); };
    }
    harness_ = std::make_unique<StorageHarness>(rs_config);
  }

  std::unique_ptr<StableLog> BuildAndCrash() {
    Rng rng(config_.seed);
    StorageHarness& h = *harness_;

    ActionId t0 = Aid(next_seq_++);
    for (int i = 0; i < 4; ++i) {
      RecoverableObject* a = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(i));
      EXPECT_TRUE(h.BindStable(t0, "a" + std::to_string(i), a).ok());
    }
    for (int i = 0; i < 2; ++i) {
      RecoverableObject* m = h.ctx(t0).CreateMutex(h.heap(), Value::Int(100 + i));
      EXPECT_TRUE(h.BindStable(t0, "m" + std::to_string(i), m).ok());
    }
    EXPECT_TRUE(h.PrepareAndCommit(t0).ok());

    for (std::size_t step = 0; step < config_.steps; ++step) {
      switch (rng.NextBelow(8)) {
        case 0:
        case 1:
        case 2:
          CommitRandomWrites(rng);
          break;
        case 3:
          MutateRandomMutex(rng);
          break;
        case 4:
          PrepareUndecided(rng);
          break;
        case 5:
          PrepareThenAbort(rng);
          break;
        case 6:
          CoordinatorActivity(rng);
          break;
        case 7:
          EarlyPrepareTrailingData(rng);
          break;
      }
    }
    if (rng.NextBool(0.5)) {
      EarlyPrepareTrailingData(rng);
    }
    return h.rs().TakeLog();
  }

 private:
  RecoverableObject* PickUnlocked(Rng& rng, bool mutex) {
    std::vector<RecoverableObject*> candidates;
    const Value& root = harness_->heap().root()->base_version();
    if (!root.is_record()) {
      return nullptr;
    }
    for (const auto& [name, value] : root.as_record()) {
      if (!value.is_ref()) {
        continue;
      }
      RecoverableObject* obj = value.as_ref();
      if (obj->is_mutex() == mutex && !obj->locked()) {
        candidates.push_back(obj);
      }
    }
    if (candidates.empty()) {
      return nullptr;
    }
    return candidates[rng.NextBelow(candidates.size())];
  }

  void CommitRandomWrites(Rng& rng) {
    StorageHarness& h = *harness_;
    ActionId aid = Aid(next_seq_++);
    std::size_t writes = 1 + rng.NextBelow(3);
    bool wrote = false;
    for (std::size_t i = 0; i < writes; ++i) {
      RecoverableObject* obj = PickUnlocked(rng, false);
      if (obj == nullptr) {
        continue;
      }
      wrote |= h.ctx(aid)
                   .WriteObject(obj, Value::Int(static_cast<std::int64_t>(rng.NextU64() % 1000)))
                   .ok();
    }
    if (!wrote) {
      return;
    }
    EXPECT_TRUE(h.PrepareAndCommit(aid).ok());
  }

  void MutateRandomMutex(Rng& rng) {
    StorageHarness& h = *harness_;
    RecoverableObject* m = PickUnlocked(rng, true);
    if (m == nullptr) {
      return;
    }
    ActionId aid = Aid(next_seq_++);
    std::int64_t v = static_cast<std::int64_t>(rng.NextU64() % 1000);
    EXPECT_TRUE(h.ctx(aid).MutateMutex(m, [v](Value& value) { value = Value::Int(v); }).ok());
    EXPECT_TRUE(h.PrepareAndCommit(aid).ok());
  }

  void PrepareUndecided(Rng& rng) {
    StorageHarness& h = *harness_;
    RecoverableObject* obj = PickUnlocked(rng, false);
    if (obj == nullptr) {
      return;
    }
    ActionId aid = Aid(next_seq_++);
    if (!h.ctx(aid).WriteObject(obj, Value::Int(-7)).ok()) {
      return;
    }
    EXPECT_TRUE(h.PrepareOnly(aid).ok());
  }

  void PrepareThenAbort(Rng& rng) {
    StorageHarness& h = *harness_;
    ActionId aid = Aid(next_seq_++);
    RecoverableObject* obj = PickUnlocked(rng, false);
    bool any = false;
    if (obj != nullptr) {
      any |= h.ctx(aid).WriteObject(obj, Value::Int(-13)).ok();
    }
    if (!any) {
      return;
    }
    EXPECT_TRUE(h.PrepareOnly(aid).ok());
    EXPECT_TRUE(h.AbortPrepared(aid).ok());
  }

  void CoordinatorActivity(Rng& rng) {
    StorageHarness& h = *harness_;
    ActionId aid = Aid(next_seq_++);
    std::vector<GuardianId> participants{GuardianId{1}, GuardianId{2}};
    EXPECT_TRUE(h.rs().Committing(aid, participants).ok());
    if (rng.NextBool(0.5)) {
      EXPECT_TRUE(h.rs().Done(aid).ok());
    }
  }

  void EarlyPrepareTrailingData(Rng& rng) {
    StorageHarness& h = *harness_;
    RecoverableObject* obj = PickUnlocked(rng, false);
    if (obj == nullptr) {
      return;
    }
    ActionId aid = Aid(next_seq_++);
    if (!h.ctx(aid).WriteObject(obj, Value::Int(-99)).ok()) {
      return;
    }
    Result<ModifiedObjectsSet> leftover = h.rs().WriteEntry(aid, h.ctx(aid).TakeMos());
    EXPECT_TRUE(leftover.ok());
    if (rng.NextBool(0.5)) {
      EXPECT_TRUE(h.rs().log().Force().ok());
    }
    h.ctx(aid).AbortVolatile(h.heap());
  }

  HistoryConfig config_;
  std::unique_ptr<StorageHarness> harness_;
  std::uint64_t next_seq_ = 1;
};

// ---- Result comparison ---------------------------------------------------

struct RecoveryRun {
  std::string label;
  std::unique_ptr<VolatileHeap> heap;
  Result<RecoveryResult> result = Status::Unavailable("recovery not run");
};

RecoveryRun RunRecovery(const StableLog& log, const std::string& label, bool cache_enabled,
                        const HybridRecoveryOptions& options) {
  RecoveryRun run;
  run.label = label;
  run.heap = std::make_unique<VolatileHeap>();
  log.read_cache().SetEnabled(cache_enabled);
  run.result = RecoverHybridLog(log, *run.heap, options);
  return run;
}

void ExpectObjectEquivalent(Uid uid, const ObjectTableEntry& a, const ObjectTableEntry& b,
                            const std::string& label) {
  EXPECT_EQ(a.state, b.state) << label << " OT state of " << to_string(uid);
  EXPECT_EQ(a.mutex_address, b.mutex_address) << label << " mutex_address of " << to_string(uid);
  ASSERT_NE(a.object, nullptr);
  ASSERT_NE(b.object, nullptr);
  EXPECT_EQ(a.object->kind(), b.object->kind()) << label << " kind of " << to_string(uid);
  EXPECT_EQ(FlattenValue(a.object->base_version(), nullptr),
            FlattenValue(b.object->base_version(), nullptr))
      << label << " base version of " << to_string(uid);
  EXPECT_EQ(a.object->has_current(), b.object->has_current())
      << label << " has_current of " << to_string(uid);
  if (a.object->has_current() && b.object->has_current()) {
    EXPECT_EQ(FlattenValue(a.object->current_version(), nullptr),
              FlattenValue(b.object->current_version(), nullptr))
        << label << " current version of " << to_string(uid);
  }
  EXPECT_EQ(a.object->write_locker(), b.object->write_locker())
      << label << " write locker of " << to_string(uid);
}

// Note: no last_outcome comparison across *different logs* — the file twin
// holds the same bytes at the same offsets, so addresses DO compare equal,
// and we assert exactly that (bit-identical tables including addresses).
void ExpectEquivalent(const RecoveryRun& reference, const RecoveryRun& candidate) {
  std::string label = reference.label + " vs " + candidate.label + ":";
  ASSERT_EQ(reference.result.ok(), candidate.result.ok())
      << label << " " << reference.result.status().ToString() << " / "
      << candidate.result.status().ToString();
  if (!reference.result.ok()) {
    EXPECT_EQ(reference.result.status().code(), candidate.result.status().code()) << label;
    return;
  }
  const RecoveryResult& a = reference.result.value();
  const RecoveryResult& b = candidate.result.value();

  EXPECT_EQ(a.last_outcome, b.last_outcome) << label;
  EXPECT_EQ(a.entries_examined, b.entries_examined) << label;
  EXPECT_EQ(a.data_entries_read, b.data_entries_read) << label;
  EXPECT_EQ(a.pt, b.pt) << label << " PT differs";
  EXPECT_EQ(a.mt, b.mt) << label << " MT differs";
  EXPECT_EQ(a.as, b.as) << label << " AS differs";

  ASSERT_EQ(a.ct.size(), b.ct.size()) << label << " CT size";
  for (const auto& [aid, entry_a] : a.ct) {
    auto it = b.ct.find(aid);
    ASSERT_NE(it, b.ct.end()) << label << " CT missing " << to_string(aid);
    EXPECT_EQ(entry_a.phase, it->second.phase) << label << " CT phase of " << to_string(aid);
    EXPECT_EQ(entry_a.participants, it->second.participants)
        << label << " CT participants of " << to_string(aid);
  }

  ASSERT_EQ(a.ot.size(), b.ot.size()) << label << " OT size";
  for (const auto& [uid, entry_a] : a.ot) {
    auto it = b.ot.find(uid);
    ASSERT_NE(it, b.ot.end()) << label << " OT missing " << to_string(uid);
    ExpectObjectEquivalent(uid, entry_a, it->second, label);
  }
}

// ---- File-twin plumbing --------------------------------------------------

std::vector<std::byte> DumpDurableBytes(StableLog& log) {
  std::uint64_t size = log.medium().durable_size();
  std::vector<std::byte> raw(size);
  Status s = log.medium().ReadInto(0, std::span<std::byte>(raw.data(), raw.size()));
  EXPECT_TRUE(s.ok()) << s.ToString();
  return raw;
}

// Writes `raw` to a fresh file and opens a StableLog over it in the given
// batch mode (the log constructor derives the durable top from the bytes).
std::unique_ptr<StableLog> MakeFileLog(const std::vector<std::byte>& raw, const std::string& path,
                                       FileStableMedium::BatchMode mode, bool batch_prefetch) {
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<FileStableMedium>> writer =
        FileStableMedium::Open(path, FileStableMedium::BatchMode::kSerial);
    EXPECT_TRUE(writer.ok());
    EXPECT_TRUE(writer.value()->Append(std::span<const std::byte>(raw.data(), raw.size())).ok());
  }
  Result<std::unique_ptr<FileStableMedium>> medium = FileStableMedium::Open(path, mode);
  EXPECT_TRUE(medium.ok());
  ReadCache::Config cache_config;
  cache_config.batch_prefetch = batch_prefetch;
  return std::make_unique<StableLog>(std::move(medium).value(), cache_config);
}

// ---- The equivalence sweep ----------------------------------------------

class ScatterReadEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScatterReadEquivalenceTest, AllReadGearsRecoverIdentically) {
  ScopedFlightRecorderDumpOnFailure dump_guard;
  const std::uint64_t seed = GetParam();
  HistoryBuilder builder(HistoryConfig{.seed = seed});
  std::unique_ptr<StableLog> mem_log = builder.BuildAndCrash();
  Result<std::uint64_t> recovered = mem_log->RecoverAfterCrash();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  RecoveryRun reference =
      RunRecovery(*mem_log, "mem-serial-uncached", false, HybridRecoveryOptions{.workers = 0});
  ASSERT_TRUE(reference.result.ok()) << reference.result.status().ToString();

  std::vector<std::byte> raw = DumpDurableBytes(*mem_log);
  ASSERT_FALSE(raw.empty());
  const std::string base =
      testing::TempDir() + "/argus_scatter_eq_" + std::to_string(seed) + "_";

  struct Gear {
    std::string name;
    FileStableMedium::BatchMode mode;
    bool batch_prefetch;
    std::size_t workers;
  };
  const std::vector<Gear> gears = {
      {"file-serial", FileStableMedium::BatchMode::kSerial, false, 0},
      {"file-preadv", FileStableMedium::BatchMode::kPreadv, false, 0},
      {"file-preadv-prefetch", FileStableMedium::BatchMode::kPreadv, true, 3},
      {"file-auto-prefetch", FileStableMedium::BatchMode::kAuto, true, 3},
  };
  for (const Gear& gear : gears) {
    std::string path = base + gear.name + ".log";
    std::unique_ptr<StableLog> file_log = MakeFileLog(raw, path, gear.mode, gear.batch_prefetch);
    ASSERT_NE(file_log, nullptr);
    ASSERT_FALSE(file_log->empty()) << gear.name;
    RecoveryRun run = RunRecovery(*file_log, gear.name, true,
                                  HybridRecoveryOptions{.workers = gear.workers});
    ExpectEquivalent(reference, run);
    std::remove(path.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScatterReadEquivalenceTest, ::testing::Values(1, 2, 3, 4),
                         [](const ::testing::TestParamInfo<std::uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// ---- Mid-batch careful-read fault ---------------------------------------

// A duplexed log whose disk-A replica decays in the middle of the byte range
// a cache fill will batch: every segment of the scatter must run its own
// CarefulRead fallback to replica B, so the batch succeeds and the recovered
// tables match an uncached twin with the identical decay profile.
TEST(ScatterReadFault, MidBatchCarefulReadFallsBackPerSegment) {
  ScopedFlightRecorderDumpOnFailure dump_guard;
  HistoryConfig config{.seed = 11, .duplexed = true, .disk_seed = 4242};
  std::unique_ptr<StableLog> uncached_log = HistoryBuilder(config).BuildAndCrash();
  std::unique_ptr<StableLog> cached_log = HistoryBuilder(config).BuildAndCrash();
  uncached_log->read_cache().SetEnabled(false);

  Result<std::uint64_t> r1 = uncached_log->RecoverAfterCrash();
  Result<std::uint64_t> r2 = cached_log->RecoverAfterCrash();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r1.value(), r2.value()) << "twin histories diverged";

  // Decay disk A *after* the restart repair pass, so the pages are bad at
  // cache-fill time — the middle of the log lands mid-batch in a fill run.
  auto corrupt_middle = [](StableLog& log) {
    auto& medium = static_cast<DuplexedStableMedium&>(log.medium());
    std::size_t page_count = medium.store().page_count();
    for (std::size_t page = page_count / 2; page < page_count / 2 + 4 && page < page_count;
         ++page) {
      if (page >= 1) {
        medium.store().disk_a().CorruptPage(page);
      }
    }
  };
  corrupt_middle(*uncached_log);
  corrupt_middle(*cached_log);
  // Drop blocks the restart scan already cached: the recoveries below must
  // fetch the decayed range from the medium again.
  cached_log->read_cache().Clear();

  RecoveryRun reference =
      RunRecovery(*uncached_log, "uncached-decayed", false, HybridRecoveryOptions{.workers = 0});
  ASSERT_TRUE(reference.result.ok()) << reference.result.status().ToString();
  RecoveryRun pipelined =
      RunRecovery(*cached_log, "cached-decayed", true, HybridRecoveryOptions{.workers = 3});
  ExpectEquivalent(reference, pipelined);

  // The fallback was exercised per segment, not masked by repair: disk A
  // still holds the bad pages (CarefulRead heals reads, not media).
  auto& medium = static_cast<DuplexedStableMedium&>(cached_log->medium());
  std::size_t page_count = medium.store().page_count();
  bool any_bad = false;
  for (std::size_t page = page_count / 2; page < page_count / 2 + 4 && page < page_count;
       ++page) {
    any_bad |= medium.store().disk_a().PageIsBad(page);
  }
  EXPECT_TRUE(any_bad) << "decay profile did not land on any data page";
}

// ---- The SubmitReads contract -------------------------------------------

TEST(SubmitReadsContract, DefaultImplementationAttemptsAllSegments) {
  InMemoryStableMedium medium;
  std::vector<std::byte> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i);
  }
  ASSERT_TRUE(medium.Append(std::span<const std::byte>(payload.data(), payload.size())).ok());

  std::vector<std::byte> a(16), b(16), c(16);
  std::vector<ReadRequest> requests(3);
  requests[0] = {.offset = 0, .out = std::span<std::byte>(a.data(), a.size())};
  requests[1] = {.offset = 60, .out = std::span<std::byte>(b.data(), b.size())};  // past extent
  requests[2] = {.offset = 32, .out = std::span<std::byte>(c.data(), c.size())};

  Status s = medium.SubmitReads(std::span<ReadRequest>(requests.data(), requests.size()));
  // First (lowest-index) failure is surfaced; the other segments still ran.
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_TRUE(requests[0].status.ok());
  EXPECT_EQ(requests[1].status.code(), ErrorCode::kNotFound);
  EXPECT_TRUE(requests[2].status.ok());
  EXPECT_EQ(a[0], std::byte{0});
  EXPECT_EQ(a[15], std::byte{15});
  EXPECT_EQ(c[0], std::byte{32});
  EXPECT_EQ(c[15], std::byte{47});
}

TEST(SubmitReadsContract, FileMediumBatchesMatchSerialReads) {
  std::string path = testing::TempDir() + "/argus_submit_reads_contract.log";
  std::remove(path.c_str());
  std::vector<std::byte> payload(64 * 1024);
  Rng rng(99);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(rng.NextU64() & 0xff);
  }

  const std::vector<FileStableMedium::BatchMode> modes = {
      FileStableMedium::BatchMode::kSerial,
      FileStableMedium::BatchMode::kPreadv,
      FileStableMedium::BatchMode::kAuto,
  };
  for (FileStableMedium::BatchMode mode : modes) {
    std::remove(path.c_str());
    Result<std::unique_ptr<FileStableMedium>> opened = FileStableMedium::Open(path, mode);
    ASSERT_TRUE(opened.ok());
    FileStableMedium& medium = *opened.value();
    ASSERT_TRUE(medium.Append(std::span<const std::byte>(payload.data(), payload.size())).ok());

    // A scatter with adjacent runs (coalesced into one preadv), gaps, and
    // out-of-order-looking strides. Every segment must equal the source.
    const std::vector<std::pair<std::uint64_t, std::size_t>> segments = {
        {0, 4096},     {4096, 4096},  {8192, 512},  // one adjacent run
        {20000, 100},                               // gap
        {32768, 4096}, {36864, 4096},               // second run
        {65000, 536},                               // tail
    };
    std::vector<std::vector<std::byte>> buffers;
    std::vector<ReadRequest> requests;
    for (const auto& [offset, len] : segments) {
      buffers.emplace_back(len);
      requests.push_back(
          {.offset = offset, .out = std::span<std::byte>(buffers.back().data(), len)});
    }
    Status s = medium.SubmitReads(std::span<ReadRequest>(requests.data(), requests.size()));
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (std::size_t i = 0; i < segments.size(); ++i) {
      ASSERT_TRUE(requests[i].status.ok()) << "segment " << i;
      EXPECT_TRUE(std::equal(buffers[i].begin(), buffers[i].end(),
                             payload.begin() + static_cast<std::ptrdiff_t>(segments[i].first)))
          << "segment " << i << " bytes diverged in mode " << static_cast<int>(mode);
    }

    // Mixed batch with an out-of-extent segment: fail fast, nothing partial.
    // The in-bounds sibling was never attempted, so it must not keep Ok over
    // an unfilled buffer — the cache would install it as a valid block.
    std::vector<std::byte> bad(16);
    std::vector<ReadRequest> mixed(2);
    mixed[0] = {.offset = 0, .out = std::span<std::byte>(bad.data(), bad.size())};
    mixed[1] = {.offset = payload.size() - 8, .out = std::span<std::byte>(bad.data(), bad.size())};
    EXPECT_EQ(medium.SubmitReads(std::span<ReadRequest>(mixed.data(), mixed.size())).code(),
              ErrorCode::kNotFound);
    EXPECT_EQ(mixed[0].status.code(), ErrorCode::kUnavailable);
    EXPECT_EQ(mixed[1].status.code(), ErrorCode::kNotFound);
  }
  std::remove(path.c_str());
}

// A mid-run I/O failure (the file truncated behind the medium's back, so the
// batch passes the bounds check but hits EOF partway) must leave fully-read
// segments Ok and stamp the failure point and everything after it non-Ok —
// the same prefix state a serial loop would produce, and never a stale Ok
// over an unfilled buffer.
TEST(SubmitReadsContract, MidRunFailureKeepsFullyReadPrefixOk) {
  std::string path = testing::TempDir() + "/argus_submit_reads_midrun.log";
  const std::vector<FileStableMedium::BatchMode> modes = {
      FileStableMedium::BatchMode::kSerial,
      FileStableMedium::BatchMode::kPreadv,
      FileStableMedium::BatchMode::kAuto,
  };
  for (FileStableMedium::BatchMode mode : modes) {
    std::remove(path.c_str());
    Result<std::unique_ptr<FileStableMedium>> opened = FileStableMedium::Open(path, mode);
    ASSERT_TRUE(opened.ok());
    FileStableMedium& medium = *opened.value();
    std::vector<std::byte> payload(32 * 1024);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::byte>(i & 0xff);
    }
    ASSERT_TRUE(medium.Append(std::span<const std::byte>(payload.data(), payload.size())).ok());
    ASSERT_EQ(::truncate(path.c_str(), 12 * 1024), 0);

    // One adjacent run of 4KiB segments spanning the truncation point.
    std::vector<std::vector<std::byte>> buffers;
    std::vector<ReadRequest> requests;
    for (std::uint64_t offset = 0; offset < 24 * 1024; offset += 4096) {
      buffers.emplace_back(4096);
      requests.push_back(
          {.offset = offset, .out = std::span<std::byte>(buffers.back().data(), 4096)});
    }
    Status s = medium.SubmitReads(std::span<ReadRequest>(requests.data(), requests.size()));
    EXPECT_FALSE(s.ok()) << "mode " << static_cast<int>(mode);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      std::uint64_t seg_end = (i + 1) * 4096;
      if (seg_end <= 12 * 1024) {
        ASSERT_TRUE(requests[i].status.ok())
            << "fully-read segment " << i << " in mode " << static_cast<int>(mode);
        EXPECT_TRUE(std::equal(buffers[i].begin(), buffers[i].end(),
                               payload.begin() + static_cast<std::ptrdiff_t>(i * 4096)))
            << "segment " << i << " bytes diverged in mode " << static_cast<int>(mode);
      } else {
        EXPECT_FALSE(requests[i].status.ok())
            << "segment " << i << " past the truncation kept Ok in mode "
            << static_cast<int>(mode);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(SubmitReadsContract, ReadManyMatchesIndividualReadsOnFileMedium) {
  HistoryBuilder builder(HistoryConfig{.seed = 7});
  std::unique_ptr<StableLog> mem_log = builder.BuildAndCrash();
  ASSERT_TRUE(mem_log->RecoverAfterCrash().ok());
  std::vector<std::byte> raw = DumpDurableBytes(*mem_log);

  std::string path = testing::TempDir() + "/argus_readmany_eq.log";
  std::unique_ptr<StableLog> file_log =
      MakeFileLog(raw, path, FileStableMedium::BatchMode::kAuto, /*batch_prefetch=*/true);
  ASSERT_NE(file_log, nullptr);

  // Collect every entry address by walking backward, then compare the batch
  // fetch against one-at-a-time reads.
  std::vector<LogAddress> addresses;
  auto cursor = file_log->ReadBackwardFromTop();
  while (true) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next.value().has_value()) {
      break;
    }
    addresses.push_back(next.value()->first);
  }
  ASSERT_FALSE(addresses.empty());

  std::vector<Result<LogEntry>> batched =
      file_log->ReadMany(std::span<const LogAddress>(addresses.data(), addresses.size()));
  ASSERT_EQ(batched.size(), addresses.size());
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    Result<LogEntry> single = file_log->Read(addresses[i]);
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    ASSERT_TRUE(batched[i].ok()) << batched[i].status().ToString();
    EXPECT_EQ(EncodeEntry(single.value()), EncodeEntry(batched[i].value()))
        << "entry " << i << " diverged";
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace argus
