#include <gtest/gtest.h>
TEST(Placeholder_early_prepare_test, Pending) { SUCCEED(); }
