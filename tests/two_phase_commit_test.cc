// Tests for two-phase commit across guardians (§2.2) on the simulated
// network: happy paths, participant aborts, queries, and log contents.

#include <gtest/gtest.h>

#include "src/tpc/sim_world.h"
#include "tests/test_support.h"

namespace argus {
namespace {

SimWorldConfig Config(std::size_t guardians, LogMode mode = LogMode::kHybrid) {
  SimWorldConfig config;
  config.guardian_count = guardians;
  config.mode = mode;
  config.seed = 7;
  return config;
}

// Creates stable integer object `name` = value at guardian `gid`.
void SeedVar(SimWorld& world, GuardianId gid, const std::string& name, std::int64_t value) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(gid, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, gid, [&](Guardian& g, ActionContext& ctx) -> Status {
          RecoverableObject* obj = ctx.CreateAtomic(g.heap(), Value::Int(value));
          return g.SetStableVariable(aid, name, obj);
        });
      });
  ASSERT_TRUE(fate.ok());
  ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
}

std::int64_t ReadVar(SimWorld& world, GuardianId gid, const std::string& name) {
  RecoverableObject* obj = world.guardian(gid).CommittedStableVariable(name);
  if (obj == nullptr) {
    return -1;
  }
  return obj->base_version().as_int();
}

TEST(TwoPhase, SingleGuardianCommit) {
  SimWorld world(Config(1));
  SeedVar(world, GuardianId{0}, "x", 5);
  EXPECT_EQ(ReadVar(world, GuardianId{0}, "x"), 5);
}

TEST(TwoPhase, DistributedTransferCommits) {
  SimWorld world(Config(3));
  SeedVar(world, GuardianId{1}, "balance", 100);
  SeedVar(world, GuardianId{2}, "balance", 50);

  // Coordinator at G0 moves 30 from G1 to G2.
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        Status s = w.RunAt(aid, GuardianId{1}, [&](Guardian& g, ActionContext& ctx) -> Status {
          Result<RecoverableObject*> v = g.GetStableVariable(aid, "balance");
          if (!v.ok()) {
            return v.status();
          }
          return ctx.UpdateObject(v.value(), [](Value& b) {
            b = Value::Int(b.as_int() - 30);
          });
        });
        if (!s.ok()) {
          return s;
        }
        return w.RunAt(aid, GuardianId{2}, [&](Guardian& g, ActionContext& ctx) -> Status {
          Result<RecoverableObject*> v = g.GetStableVariable(aid, "balance");
          if (!v.ok()) {
            return v.status();
          }
          return ctx.UpdateObject(v.value(), [](Value& b) {
            b = Value::Int(b.as_int() + 30);
          });
        });
      });
  ASSERT_TRUE(fate.ok());
  EXPECT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "balance"), 70);
  EXPECT_EQ(ReadVar(world, GuardianId{2}, "balance"), 80);
  // The coordinator finished 2PC (done record written).
  // Fate is reported by the coordinator guardian itself.
}

TEST(TwoPhase, BodyFailureAbortsEverywhere) {
  SimWorld world(Config(2));
  SeedVar(world, GuardianId{1}, "x", 10);
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        Status s = w.RunAt(aid, GuardianId{1}, [&](Guardian& g, ActionContext& ctx) -> Status {
          Result<RecoverableObject*> v = g.GetStableVariable(aid, "x");
          if (!v.ok()) {
            return v.status();
          }
          return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(999); });
        });
        if (!s.ok()) {
          return s;
        }
        return Status::Unavailable("handler failed");  // body fails → abort
      });
  ASSERT_TRUE(fate.ok());
  EXPECT_EQ(fate.value(), Guardian::ActionFate::kAborted);
  world.Pump();
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 10);
  // The write lock was released by the abort.
  EXPECT_FALSE(world.guardian(1).CommittedStableVariable("x")->locked());
}

TEST(TwoPhase, LockConflictLeadsToAbortWithoutDamage) {
  SimWorld world(Config(2));
  SeedVar(world, GuardianId{1}, "x", 1);

  // First action takes the write lock and stays open.
  Guardian& g0 = world.guardian(0);
  ActionId holder = g0.BeginTopAction();
  ASSERT_TRUE(world.RunAt(holder, GuardianId{1}, [&](Guardian& g, ActionContext& ctx) {
    Result<RecoverableObject*> v = g.GetStableVariable(holder, "x");
    EXPECT_TRUE(v.ok());
    return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(2); });
  }).ok());

  // Second action conflicts and aborts.
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, GuardianId{1}, [&](Guardian& g, ActionContext& ctx) -> Status {
          Result<RecoverableObject*> v = g.GetStableVariable(aid, "x");
          if (!v.ok()) {
            return v.status();
          }
          return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(3); });
        });
      });
  ASSERT_TRUE(fate.ok());
  EXPECT_EQ(fate.value(), Guardian::ActionFate::kAborted);

  // First action still completes.
  ASSERT_TRUE(g0.RequestCommit(holder).ok());
  world.Pump();
  EXPECT_EQ(g0.FateOf(holder), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 2);
}

TEST(TwoPhase, CoordinatorIsAlsoParticipant) {
  SimWorld world(Config(2));
  SeedVar(world, GuardianId{0}, "local", 1);
  SeedVar(world, GuardianId{1}, "remote", 1);
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        Status s = w.RunAt(aid, GuardianId{0}, [&](Guardian& g, ActionContext& ctx) -> Status {
          Result<RecoverableObject*> v = g.GetStableVariable(aid, "local");
          if (!v.ok()) {
            return v.status();
          }
          return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(2); });
        });
        if (!s.ok()) {
          return s;
        }
        return w.RunAt(aid, GuardianId{1}, [&](Guardian& g, ActionContext& ctx) -> Status {
          Result<RecoverableObject*> v = g.GetStableVariable(aid, "remote");
          if (!v.ok()) {
            return v.status();
          }
          return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(2); });
        });
      });
  ASSERT_TRUE(fate.ok());
  EXPECT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{0}, "local"), 2);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "remote"), 2);
}

TEST(TwoPhase, ReadOnlyActionCommitsVacuously) {
  SimWorld world(Config(1));
  SeedVar(world, GuardianId{0}, "x", 5);
  std::uint64_t forces_before = world.guardian(0).recovery().log().stats().forces;
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, GuardianId{0}, [&](Guardian& g, ActionContext& ctx) -> Status {
          Result<RecoverableObject*> v = g.GetStableVariable(aid, "x");
          if (!v.ok()) {
            return v.status();
          }
          Result<Value> value = ctx.ReadObject(v.value());
          return value.ok() ? Status::Ok() : value.status();
        });
      });
  ASSERT_TRUE(fate.ok());
  EXPECT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  // A read-only participant still runs 2PC here but writes no data entries:
  // the single guardian is both participant (prepared + committed) and
  // coordinator (committing + done), so exactly 4 small forces.
  std::uint64_t forces_after = world.guardian(0).recovery().log().stats().forces;
  EXPECT_LE(forces_after - forces_before, 4u);
}

TEST(TwoPhase, SequentialActionsAccumulate) {
  SimWorld world(Config(2));
  SeedVar(world, GuardianId{1}, "sum", 0);
  for (int i = 1; i <= 10; ++i) {
    Result<Guardian::ActionFate> fate =
        world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
          return w.RunAt(aid, GuardianId{1}, [&](Guardian& g, ActionContext& ctx) -> Status {
            Result<RecoverableObject*> v = g.GetStableVariable(aid, "sum");
            if (!v.ok()) {
              return v.status();
            }
            return ctx.UpdateObject(v.value(), [i](Value& b) {
              b = Value::Int(b.as_int() + i);
            });
          });
        });
    ASSERT_TRUE(fate.ok());
    ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  }
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "sum"), 55);
}

TEST(TwoPhase, ParticipantForcesTwicePerCommittedAction) {
  // §2.2/§3.3: participant = prepared + committed forces; coordinator =
  // committing + done forces.
  SimWorld world(Config(2));
  SeedVar(world, GuardianId{1}, "x", 0);
  std::uint64_t p_before = world.guardian(1).recovery().log().stats().forces;
  std::uint64_t c_before = world.guardian(0).recovery().log().stats().forces;
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, GuardianId{1}, [&](Guardian& g, ActionContext& ctx) -> Status {
          Result<RecoverableObject*> v = g.GetStableVariable(aid, "x");
          if (!v.ok()) {
            return v.status();
          }
          return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(1); });
        });
      });
  ASSERT_TRUE(fate.ok());
  ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(world.guardian(1).recovery().log().stats().forces - p_before, 2u);
  EXPECT_EQ(world.guardian(0).recovery().log().stats().forces - c_before, 2u);
}

TEST(TwoPhase, WorksOnSimpleLogToo) {
  SimWorld world(Config(2, LogMode::kSimple));
  SeedVar(world, GuardianId{1}, "x", 3);
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, GuardianId{1}, [&](Guardian& g, ActionContext& ctx) -> Status {
          Result<RecoverableObject*> v = g.GetStableVariable(aid, "x");
          if (!v.ok()) {
            return v.status();
          }
          return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(4); });
        });
      });
  ASSERT_TRUE(fate.ok());
  EXPECT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 4);
}

}  // namespace
}  // namespace argus
