// Tests for the post-recovery invariant validator (V1-V6).

#include <gtest/gtest.h>

#include "src/recovery/validate.h"
#include "tests/test_support.h"

namespace argus {
namespace {

TEST(Validate, CleanAfterSimpleHistory) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* a = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(1));
  RecoverableObject* m = h.ctx(t1).CreateMutex(h.heap(), Value::Int(2));
  ASSERT_TRUE(h.BindStable(t1, "a", a).ok());
  ASSERT_TRUE(h.BindStable(t1, "m", m).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok());
  ValidationReport report = ValidateRecoveredState(h.heap(), info.value());
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_NE(report.ToString().find("OK"), std::string::npos);
}

TEST(Validate, CleanWithPreparedUndecidedAction) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* a = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(1));
  ASSERT_TRUE(h.BindStable(t1, "a", a).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.ctx(t2).WriteObject(h.StableVar("a"), Value::Int(2)).ok());
  ASSERT_TRUE(h.PrepareOnly(t2).ok());

  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok());
  // A prepared action's restored lock + tentative version is LEGAL (V3).
  ValidationReport report = ValidateRecoveredState(h.heap(), info.value());
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(Validate, DetectsUnresolvedPlaceholder) {
  VolatileHeap heap;
  heap.root()->RestoreBase(Value::OfRecord({{"x", Value::OfUid(Uid{42})}}));
  RecoveryInfo info;
  ValidationReport report = ValidateRecoveredState(heap, info);
  ASSERT_FALSE(report.clean());
  EXPECT_NE(report.ToString().find("V1"), std::string::npos);
}

TEST(Validate, DetectsDanglingTentativeVersion) {
  VolatileHeap heap;
  ActionId ghost = Aid(9);
  RecoverableObject* obj = heap.CreateAtomic(ghost, Value::Int(1));
  obj->CommitAction(ghost);  // drop the creator's read lock
  obj->RestoreCurrentWithLock(Value::Int(2), ghost);
  RecoveryInfo info;  // ghost is NOT prepared in the (empty) PT
  ValidationReport report = ValidateRecoveredState(heap, info);
  ASSERT_FALSE(report.clean());
  EXPECT_NE(report.ToString().find("V3"), std::string::npos);
}

TEST(Validate, DetectsSeizedMutex) {
  VolatileHeap heap;
  RecoverableObject* m = heap.CreateMutex(Value::Int(1));
  ASSERT_TRUE(m->Seize(Aid(1)).ok());
  RecoveryInfo info;
  ValidationReport report = ValidateRecoveredState(heap, info);
  ASSERT_FALSE(report.clean());
  EXPECT_NE(report.ToString().find("V4"), std::string::npos);
}

TEST(Validate, DetectsStaleUidCounter) {
  VolatileHeap heap;
  heap.InstallRecovered(Uid{50}, ObjectKind::kAtomic);
  heap.ResetUidCounter(10);  // wrong: must be past 50
  RecoveryInfo info;
  ValidationReport report = ValidateRecoveredState(heap, info);
  ASSERT_FALSE(report.clean());
  EXPECT_NE(report.ToString().find("V5"), std::string::npos);
}

TEST(Validate, CleanAfterHousekeepingAndCrash) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  RecoverableObject* a = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(1));
  ASSERT_TRUE(h.BindStable(t1, "a", a).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  for (std::uint64_t i = 2; i <= 20; ++i) {
    ActionId t = Aid(i);
    ASSERT_TRUE(h.ctx(t).WriteObject(h.StableVar("a"),
                                     Value::Int(static_cast<std::int64_t>(i))).ok());
    ASSERT_TRUE(h.PrepareAndCommit(t).ok());
  }
  ASSERT_TRUE(h.rs().Housekeep(HousekeepingMethod::kSnapshot).ok());
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok());
  ValidationReport report = ValidateRecoveredState(h.heap(), info.value());
  EXPECT_TRUE(report.clean()) << report.ToString();
}

}  // namespace
}  // namespace argus
