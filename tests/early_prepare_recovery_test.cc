// Tests for early prepare (§4.4): write_entry semantics, the returned
// inaccessible remainder, interleaved data entries from concurrent actions,
// and recovery across the interleavings.

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace argus {
namespace {

// Seeds the harness with stable atomic "a" and mutex "m".
void Seed(StorageHarness& h) {
  ActionId t0 = Aid(100);
  RecoverableObject* a = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(0));
  RecoverableObject* m = h.ctx(t0).CreateMutex(h.heap(), Value::Int(0));
  ASSERT_TRUE(h.BindStable(t0, "a", a).ok());
  ASSERT_TRUE(h.BindStable(t0, "m", m).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t0).ok());
}

TEST(EarlyPrepare, WriteEntryReturnsInaccessibleRemainder) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  ActionId t1 = Aid(1);
  // One accessible object modified, one orphan created+modified.
  ASSERT_TRUE(h.ctx(t1).WriteObject(h.StableVar("a"), Value::Int(1)).ok());
  RecoverableObject* orphan = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(5));
  ASSERT_TRUE(h.ctx(t1).WriteObject(orphan, Value::Int(6)).ok());

  Result<ModifiedObjectsSet> leftover = h.rs().WriteEntry(t1, h.ctx(t1).TakeMos());
  ASSERT_TRUE(leftover.ok());
  // The orphan was not written — it is inaccessible.
  ASSERT_EQ(leftover.value().size(), 1u);
  EXPECT_TRUE(leftover.value().contains(orphan->uid()));
}

TEST(EarlyPrepare, RemainderWrittenWhenItBecomesAccessible) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  ActionId t1 = Aid(1);
  RecoverableObject* orphan = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(5));
  ASSERT_TRUE(h.ctx(t1).WriteObject(orphan, Value::Int(6)).ok());
  Result<ModifiedObjectsSet> leftover = h.rs().WriteEntry(t1, h.ctx(t1).TakeMos());
  ASSERT_TRUE(leftover.ok());
  h.ctx(t1).AddToMos(leftover.value());

  // Now link the orphan into the stable state and early-prepare again.
  ASSERT_TRUE(h.BindStable(t1, "orphan", orphan).ok());
  Result<ModifiedObjectsSet> second = h.rs().WriteEntry(t1, h.ctx(t1).TakeMos());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().empty());

  // Prepare with an empty MOS: everything was early-prepared.
  ASSERT_TRUE(h.rs().Prepare(t1, {}).ok());
  ASSERT_TRUE(h.rs().Commit(t1).ok());
  h.ctx(t1).CommitVolatile(h.heap());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  RecoverableObject* restored = h.StableVar("orphan");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->base_version(), Value::Int(6));
}

TEST(EarlyPrepare, PrepareAfterEarlyPrepareCoversEverything) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  ActionId t1 = Aid(1);
  ASSERT_TRUE(h.ctx(t1).WriteObject(h.StableVar("a"), Value::Int(7)).ok());
  Result<ModifiedObjectsSet> leftover = h.rs().WriteEntry(t1, h.ctx(t1).TakeMos());
  ASSERT_TRUE(leftover.ok());
  EXPECT_TRUE(leftover.value().empty());

  // Re-modify after early prepare: the object goes back into the MOS and a
  // second (newer) data entry is written at prepare time.
  ASSERT_TRUE(h.ctx(t1).WriteObject(h.StableVar("a"), Value::Int(8)).ok());
  ASSERT_TRUE(h.rs().Prepare(t1, h.ctx(t1).TakeMos()).ok());
  ASSERT_TRUE(h.rs().Commit(t1).ok());
  h.ctx(t1).CommitVolatile(h.heap());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(8));
}

TEST(EarlyPrepare, InterleavedActionsRecoverCorrectly) {
  // The §4.4 situation end-to-end: T1 early-writes the mutex, T2 writes it
  // afterwards, T2 prepares FIRST, T1 prepares and commits, crash.
  StorageHarness h(LogMode::kHybrid);
  Seed(h);

  ActionId t1 = Aid(1);
  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.ctx(t1).MutateMutex(h.StableVar("m"),
                                    [](Value& v) { v = Value::Str("T1"); }).ok());
  ASSERT_TRUE(h.rs().WriteEntry(t1, h.ctx(t1).TakeMos()).ok());

  ASSERT_TRUE(h.ctx(t2).MutateMutex(h.StableVar("m"),
                                    [](Value& v) { v = Value::Str("T2"); }).ok());
  ASSERT_TRUE(h.rs().WriteEntry(t2, h.ctx(t2).TakeMos()).ok());

  ASSERT_TRUE(h.rs().Prepare(t2, {}).ok());  // T2 prepares first
  ASSERT_TRUE(h.rs().Prepare(t1, {}).ok());  // T1 prepares second
  ASSERT_TRUE(h.rs().Commit(t1).ok());
  h.ctx(t1).CommitVolatile(h.heap());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  // T2's version is the later write and must win despite T1's later prepare.
  EXPECT_EQ(h.StableVar("m")->mutex_value(), Value::Str("T2"));
}

TEST(EarlyPrepare, AbortAfterEarlyPrepareLeavesNoTrace) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  ActionId t1 = Aid(1);
  ASSERT_TRUE(h.ctx(t1).WriteObject(h.StableVar("a"), Value::Int(9)).ok());
  ASSERT_TRUE(h.rs().WriteEntry(t1, h.ctx(t1).TakeMos()).ok());
  // Local abort before prepare: wasted log writes, nothing more.
  ASSERT_TRUE(h.rs().Abort(t1).ok());
  h.ctx(t1).AbortVolatile(h.heap());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(0));
  EXPECT_FALSE(h.StableVar("a")->locked());
}

TEST(EarlyPrepare, UnpreparedEarlyWritesInvisibleAfterCrash) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  ActionId t1 = Aid(1);
  ASSERT_TRUE(h.ctx(t1).WriteObject(h.StableVar("a"), Value::Int(9)).ok());
  ASSERT_TRUE(h.ctx(t1).MutateMutex(h.StableVar("m"),
                                    [](Value& v) { v = Value::Int(9); }).ok());
  ASSERT_TRUE(h.rs().WriteEntry(t1, h.ctx(t1).TakeMos()).ok());
  ASSERT_TRUE(h.rs().log().Force().ok());  // data durable, no outcome entry

  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(0));
  // The mutex too: an action that never PREPARED leaves no mutex state.
  EXPECT_EQ(h.StableVar("m")->mutex_value(), Value::Int(0));
}

TEST(EarlyPrepare, EarlyPreparedDataCountsTowardPreparedEntry) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  ActionId t1 = Aid(1);
  ASSERT_TRUE(h.ctx(t1).WriteObject(h.StableVar("a"), Value::Int(3)).ok());
  ASSERT_TRUE(h.rs().WriteEntry(t1, h.ctx(t1).TakeMos()).ok());
  ASSERT_TRUE(h.rs().Prepare(t1, {}).ok());

  // The prepared entry must carry the pair for "a" even though the data
  // entry was written before the prepare call.
  Result<LogEntry> top = h.rs().log().Read(h.rs().log().GetTop().value());
  ASSERT_TRUE(top.ok());
  const auto* prepared = std::get_if<PreparedEntry>(&top.value());
  ASSERT_NE(prepared, nullptr);
  ASSERT_EQ(prepared->objects.size(), 1u);
  EXPECT_EQ(prepared->objects[0].uid, h.StableVar("a")->uid());
}

TEST(EarlyPrepare, MultipleEarlyPreparesAccumulate) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  ActionId t1 = Aid(1);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(h.ctx(t1).WriteObject(h.StableVar("a"), Value::Int(i)).ok());
    ASSERT_TRUE(h.rs().WriteEntry(t1, h.ctx(t1).TakeMos()).ok());
  }
  ASSERT_TRUE(h.rs().Prepare(t1, {}).ok());
  ASSERT_TRUE(h.rs().Commit(t1).ok());
  h.ctx(t1).CommitVolatile(h.heap());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(5));
}

}  // namespace
}  // namespace argus
