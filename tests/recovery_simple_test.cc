// End-to-end recovery tests for the SIMPLE log (chapter 3): write through the
// recovery system, crash, recover, and check the restored stable state and
// the returned OT/PT tables.

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace argus {
namespace {

TEST(SimpleRecovery, FreshGuardianRecoversEmptyRoot) {
  StorageHarness h(LogMode::kSimple);
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // The guardian-creation entry restores exactly the (empty) root.
  ASSERT_EQ(info.value().ot.size(), 1u);
  EXPECT_TRUE(info.value().ot.contains(Uid::Root()));
  EXPECT_TRUE(info.value().pt.empty());
  ASSERT_TRUE(h.heap().root()->base_version().is_record());
  EXPECT_TRUE(h.heap().root()->base_version().as_record().empty());
}

TEST(SimpleRecovery, CommittedObjectSurvivesCrash) {
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  RecoverableObject* acct = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(100));
  ASSERT_TRUE(h.BindStable(t1, "account", acct).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  RecoverableObject* restored = h.StableVar("account");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->base_version(), Value::Int(100));
  EXPECT_EQ(info.value().pt.at(t1), ParticipantState::kCommitted);
}

TEST(SimpleRecovery, UncommittedModificationDoesNotSurvive) {
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  RecoverableObject* acct = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(100));
  ASSERT_TRUE(h.BindStable(t1, "account", acct).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  // t2 modifies but never prepares: the change is volatile only.
  ActionId t2 = Aid(2);
  RecoverableObject* obj = h.StableVar("account");
  ASSERT_TRUE(h.ctx(t2).WriteObject(obj, Value::Int(999)).ok());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  RecoverableObject* restored = h.StableVar("account");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->base_version(), Value::Int(100));
}

TEST(SimpleRecovery, PreparedUndecidedActionIsRestoredWithLock) {
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  RecoverableObject* acct = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(100));
  ASSERT_TRUE(h.BindStable(t1, "account", acct).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.ctx(t2).WriteObject(h.StableVar("account"), Value::Int(55)).ok());
  ASSERT_TRUE(h.PrepareOnly(t2).ok());

  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().pt.at(t2), ParticipantState::kPrepared);

  RecoverableObject* restored = h.StableVar("account");
  ASSERT_NE(restored, nullptr);
  // Base = committed value; current = tentative value, write-locked by t2.
  EXPECT_EQ(restored->base_version(), Value::Int(100));
  EXPECT_TRUE(restored->has_current());
  EXPECT_EQ(restored->current_version(), Value::Int(55));
  EXPECT_TRUE(restored->HoldsWriteLock(t2));
}

TEST(SimpleRecovery, PreparedThenCommittedAfterRecoveryInstalls) {
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  RecoverableObject* acct = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(1));
  ASSERT_TRUE(h.BindStable(t1, "v", acct).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.ctx(t2).WriteObject(h.StableVar("v"), Value::Int(2)).ok());
  ASSERT_TRUE(h.PrepareOnly(t2).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());

  // The coordinator's verdict arrives after recovery: commit.
  ASSERT_TRUE(h.rs().Commit(t2).ok());
  RecoverableObject* obj = h.StableVar("v");
  obj->CommitAction(t2);
  EXPECT_EQ(obj->base_version(), Value::Int(2));

  // And it survives another crash.
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("v")->base_version(), Value::Int(2));
}

TEST(SimpleRecovery, AbortedActionChangesDiscarded) {
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  RecoverableObject* acct = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(10));
  ASSERT_TRUE(h.BindStable(t1, "v", acct).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.ctx(t2).WriteObject(h.StableVar("v"), Value::Int(20)).ok());
  ASSERT_TRUE(h.PrepareOnly(t2).ok());
  ASSERT_TRUE(h.AbortPrepared(t2).ok());

  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().pt.at(t2), ParticipantState::kAborted);
  EXPECT_EQ(h.StableVar("v")->base_version(), Value::Int(10));
  EXPECT_FALSE(h.StableVar("v")->locked());
}

TEST(SimpleRecovery, MutexSurvivesAbortOfPreparedAction) {
  // Scenario 2 (Figure 3-8) semantics: a mutex version written by an action
  // that PREPARED is restored even though the action later aborted.
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  RecoverableObject* m = h.ctx(t1).CreateMutex(h.heap(), Value::Int(0));
  ASSERT_TRUE(h.BindStable(t1, "m", m).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.ctx(t2).MutateMutex(h.StableVar("m"),
                                    [](Value& v) { v = Value::Int(42); }).ok());
  ASSERT_TRUE(h.PrepareOnly(t2).ok());
  ASSERT_TRUE(h.AbortPrepared(t2).ok());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("m")->mutex_value(), Value::Int(42));
}

TEST(SimpleRecovery, MutexOfUnpreparedActionNotRestored) {
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  RecoverableObject* m = h.ctx(t1).CreateMutex(h.heap(), Value::Int(7));
  ASSERT_TRUE(h.BindStable(t1, "m", m).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.ctx(t2).MutateMutex(h.StableVar("m"),
                                    [](Value& v) { v = Value::Int(99); }).ok());
  // t2 never prepares; crash.
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("m")->mutex_value(), Value::Int(7));
}

TEST(SimpleRecovery, ObjectGraphWithSharingIsRebuilt) {
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  RecoverableObject* shared = h.ctx(t1).CreateAtomic(h.heap(), Value::Str("shared"));
  RecoverableObject* left = h.ctx(t1).CreateAtomic(h.heap(), Value::Ref(shared));
  RecoverableObject* right = h.ctx(t1).CreateAtomic(h.heap(), Value::Ref(shared));
  ASSERT_TRUE(h.BindStable(t1, "left", left).ok());
  ASSERT_TRUE(h.BindStable(t1, "right", right).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  RecoverableObject* l = h.StableVar("left");
  RecoverableObject* r = h.StableVar("right");
  ASSERT_NE(l, nullptr);
  ASSERT_NE(r, nullptr);
  // Sharing of recoverable objects is preserved (§2.4.3).
  ASSERT_TRUE(l->base_version().is_ref());
  ASSERT_TRUE(r->base_version().is_ref());
  EXPECT_EQ(l->base_version().as_ref(), r->base_version().as_ref());
  EXPECT_EQ(l->base_version().as_ref()->base_version(), Value::Str("shared"));
}

TEST(SimpleRecovery, MultipleCommitsLatestVersionWins) {
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  RecoverableObject* v = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(0));
  ASSERT_TRUE(h.BindStable(t1, "v", v).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  for (std::uint64_t i = 2; i <= 10; ++i) {
    ActionId t = Aid(i);
    ASSERT_TRUE(h.ctx(t).WriteObject(h.StableVar("v"),
                                     Value::Int(static_cast<std::int64_t>(i))).ok());
    ASSERT_TRUE(h.PrepareAndCommit(t).ok());
  }
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("v")->base_version(), Value::Int(10));
}

TEST(SimpleRecovery, UidCounterResumesPastRecoveredUids) {
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  RecoverableObject* a = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(1));
  Uid old_uid = a->uid();
  ASSERT_TRUE(h.BindStable(t1, "a", a).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  ActionId t2 = Aid(2);
  RecoverableObject* fresh = h.ctx(t2).CreateAtomic(h.heap(), Value::Int(2));
  EXPECT_GT(fresh->uid().value, old_uid.value);  // no uid reuse (§3.2)
}

TEST(SimpleRecovery, AccessibilitySetRebuiltFromTraversal) {
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  RecoverableObject* a = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(1));
  ASSERT_TRUE(h.BindStable(t1, "a", a).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  const AccessibilitySet& as = h.rs().writer().accessibility_set();
  EXPECT_TRUE(as.contains(Uid::Root()));
  EXPECT_TRUE(as.contains(h.StableVar("a")->uid()));
}

TEST(SimpleRecovery, CoordinatorTablesRestored) {
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  ASSERT_TRUE(h.rs().Committing(t1, {GuardianId{1}, GuardianId{2}}).ok());
  ActionId t2 = Aid(2);
  ASSERT_TRUE(h.rs().Committing(t2, {GuardianId{3}}).ok());
  ASSERT_TRUE(h.rs().Done(t2).ok());

  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().ct.at(t1).phase, CoordinatorPhase::kCommitting);
  ASSERT_EQ(info.value().ct.at(t1).participants.size(), 2u);
  EXPECT_EQ(info.value().ct.at(t2).phase, CoordinatorPhase::kDone);
}

TEST(SimpleRecovery, CommittedSsEntryIsRejected) {
  // committed_ss is a hybrid-log (housekeeping) construct; finding one in a
  // simple log is corruption, not something to skip silently.
  auto log = MakeMemLog();
  log->Write(LogEntry(CommittedSsEntry{{}, LogAddress::Null()}));
  ASSERT_TRUE(log->Force().ok());
  VolatileHeap heap;
  Result<RecoveryResult> r = RecoverSimpleLog(*log, heap);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCorruption);
}

TEST(SimpleRecovery, RepeatedCrashesAreIdempotent) {
  StorageHarness h(LogMode::kSimple);
  ActionId t1 = Aid(1);
  RecoverableObject* v = h.ctx(t1).CreateAtomic(h.heap(), Value::Int(123));
  ASSERT_TRUE(h.BindStable(t1, "v", v).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(h.CrashAndRecover().ok()) << "crash " << i;
    EXPECT_EQ(h.StableVar("v")->base_version(), Value::Int(123));
  }
}

}  // namespace
}  // namespace argus
