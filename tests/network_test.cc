// Tests for the simulated network: FIFO delivery, drops, partitions, stats.

#include <gtest/gtest.h>

#include "src/tpc/network.h"

namespace argus {
namespace {

Message Msg(std::uint32_t from, std::uint32_t to, MessageType type = MessageType::kPrepare) {
  Message m;
  m.from = GuardianId{from};
  m.to = GuardianId{to};
  m.type = type;
  m.aid = ActionId{GuardianId{from}, 1};
  return m;
}

TEST(SimNetwork, FifoDelivery) {
  SimNetwork net(1);
  net.Send(Msg(0, 1, MessageType::kPrepare));
  net.Send(Msg(0, 1, MessageType::kCommit));
  auto first = net.NextDelivery();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MessageType::kPrepare);
  auto second = net.NextDelivery();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MessageType::kCommit);
  EXPECT_FALSE(net.NextDelivery().has_value());
  EXPECT_TRUE(net.idle());
}

TEST(SimNetwork, DropProbabilityOneDropsEverything) {
  SimNetwork net(1);
  net.set_drop_probability(1.0);
  for (int i = 0; i < 10; ++i) {
    net.Send(Msg(0, 1));
  }
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.stats().dropped, 10u);
  EXPECT_EQ(net.stats().sent, 10u);
}

TEST(SimNetwork, PartitionedSenderDrops) {
  SimNetwork net(1);
  net.Partition(GuardianId{0});
  net.Send(Msg(0, 1));
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(SimNetwork, PartitionedReceiverDropsAtDeliveryTime) {
  SimNetwork net(1);
  net.Send(Msg(0, 1));
  net.Partition(GuardianId{1});  // partition AFTER the send
  EXPECT_FALSE(net.NextDelivery().has_value());
  EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(SimNetwork, HealRestoresDelivery) {
  SimNetwork net(1);
  net.Partition(GuardianId{1});
  net.Heal(GuardianId{1});
  net.Send(Msg(0, 1));
  EXPECT_TRUE(net.NextDelivery().has_value());
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(SimNetwork, DeterministicDropsAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    SimNetwork net(seed);
    net.set_drop_probability(0.5);
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      net.Send(Msg(0, 1));
      pattern += net.idle() ? 'd' : 'q';
      while (net.NextDelivery().has_value()) {
      }
    }
    return pattern;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Messages, ToStringRendersAllTypes) {
  EXPECT_EQ(Msg(0, 1, MessageType::kPrepare).ToString(), "prepare(T1@G0) G0->G1");
  Message ack = Msg(1, 0, MessageType::kPrepareAck);
  ack.positive = true;
  EXPECT_EQ(ack.ToString(), "prepare_ack(T1@G1) G1->G0 [yes]");
  Message reply = Msg(0, 1, MessageType::kQueryReply);
  EXPECT_EQ(reply.ToString(), "query_reply(T1@G0) G0->G1 [no]");
  for (MessageType type : {MessageType::kCommit, MessageType::kCommitAck, MessageType::kAbort,
                           MessageType::kQuery}) {
    EXPECT_FALSE(std::string(MessageTypeName(type)).empty());
  }
}

}  // namespace
}  // namespace argus
