// Tests for the simulated network: FIFO delivery, drops, partitions, stats.

#include <gtest/gtest.h>

#include "src/tpc/network.h"

namespace argus {
namespace {

Message Msg(std::uint32_t from, std::uint32_t to, MessageType type = MessageType::kPrepare) {
  Message m;
  m.from = GuardianId{from};
  m.to = GuardianId{to};
  m.type = type;
  m.aid = ActionId{GuardianId{from}, 1};
  return m;
}

TEST(SimNetwork, FifoDelivery) {
  SimNetwork net(1);
  net.Send(Msg(0, 1, MessageType::kPrepare));
  net.Send(Msg(0, 1, MessageType::kCommit));
  auto first = net.NextDelivery();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MessageType::kPrepare);
  auto second = net.NextDelivery();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MessageType::kCommit);
  EXPECT_FALSE(net.NextDelivery().has_value());
  EXPECT_TRUE(net.idle());
}

TEST(SimNetwork, DropProbabilityOneDropsEverything) {
  SimNetwork net(1);
  net.set_drop_probability(1.0);
  for (int i = 0; i < 10; ++i) {
    net.Send(Msg(0, 1));
  }
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.stats().dropped, 10u);
  EXPECT_EQ(net.stats().sent, 10u);
}

TEST(SimNetwork, PartitionedSenderDrops) {
  SimNetwork net(1);
  net.Partition(GuardianId{0});
  net.Send(Msg(0, 1));
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(SimNetwork, PartitionedReceiverDropsAtDeliveryTime) {
  SimNetwork net(1);
  net.Send(Msg(0, 1));
  net.Partition(GuardianId{1});  // partition AFTER the send
  EXPECT_FALSE(net.NextDelivery().has_value());
  EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(SimNetwork, HealRestoresDelivery) {
  SimNetwork net(1);
  net.Partition(GuardianId{1});
  net.Heal(GuardianId{1});
  net.Send(Msg(0, 1));
  EXPECT_TRUE(net.NextDelivery().has_value());
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(SimNetwork, DeterministicDropsAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    SimNetwork net(seed);
    net.set_drop_probability(0.5);
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      net.Send(Msg(0, 1));
      pattern += net.idle() ? 'd' : 'q';
      while (net.NextDelivery().has_value()) {
      }
    }
    return pattern;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(SimNetwork, PartitionDropsEveryTwoPhaseMessageType) {
  // A node partition must be symmetric per message type: the same kPrepare /
  // kPrepareAck / kCommit / kCommitAck / kAbort / kQuery / kQueryReply that a
  // healthy wire carries is cut in BOTH directions while the node is out.
  for (MessageType type : {MessageType::kPrepare, MessageType::kPrepareAck, MessageType::kCommit,
                           MessageType::kCommitAck, MessageType::kAbort, MessageType::kQuery,
                           MessageType::kQueryReply}) {
    SCOPED_TRACE(MessageTypeName(type));
    SimNetwork net(1);
    net.Partition(GuardianId{1});
    net.Send(Msg(0, 1, type));  // toward the island
    net.Send(Msg(1, 0, type));  // from the island
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.stats().dropped, 2u);
    net.Heal(GuardianId{1});
    net.Send(Msg(0, 1, type));
    net.Send(Msg(1, 0, type));
    EXPECT_TRUE(net.NextDelivery().has_value());
    EXPECT_TRUE(net.NextDelivery().has_value());
    EXPECT_EQ(net.stats().delivered, 2u);
  }
}

TEST(SimNetwork, LoopbackIsExemptFromPartition) {
  // A partition cuts the wire, not the guardian's own queue: the coordinator
  // it isolates must still deliver its self-addressed messages (e.g. the
  // abort that releases its local locks).
  SimNetwork net(1);
  net.Partition(GuardianId{0});
  net.Send(Msg(0, 0, MessageType::kAbort));
  auto m = net.NextDelivery();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, MessageType::kAbort);
  EXPECT_EQ(net.stats().dropped, 0u);
}

TEST(SimNetwork, DirectedEdgePartitionCutsOneDirectionOnly) {
  SimNetwork net(1);
  net.PartitionEdge(GuardianId{0}, GuardianId{1});
  net.Send(Msg(0, 1, MessageType::kPrepare));   // cut
  net.Send(Msg(1, 0, MessageType::kPrepareAck));  // reverse edge flows
  auto m = net.NextDelivery();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, MessageType::kPrepareAck);
  EXPECT_FALSE(net.NextDelivery().has_value());
  EXPECT_EQ(net.stats().dropped, 1u);

  net.HealEdge(GuardianId{0}, GuardianId{1});
  net.Send(Msg(0, 1, MessageType::kPrepare));
  EXPECT_TRUE(net.NextDelivery().has_value());
}

TEST(SimNetwork, HealAllLiftsNodesAndEdges) {
  SimNetwork net(1);
  net.Partition(GuardianId{0});
  net.PartitionEdge(GuardianId{1}, GuardianId{2});
  ASSERT_TRUE(net.Blocked(GuardianId{0}, GuardianId{1}));
  ASSERT_TRUE(net.Blocked(GuardianId{1}, GuardianId{2}));
  net.HealAll();
  EXPECT_FALSE(net.Blocked(GuardianId{0}, GuardianId{1}));
  EXPECT_FALSE(net.Blocked(GuardianId{1}, GuardianId{2}));
}

TEST(SimNetwork, EdgeDelayHoldsMessagesSoLaterTrafficOvertakes) {
  // A delay storm on 0→1 holds the prepare; the undelayed 2→1 commit sent
  // AFTER it is delivered FIRST — the reordering 2PC must tolerate.
  SimNetwork net(1);
  net.SetEdgeDelay(GuardianId{0}, GuardianId{1}, 5, 5);
  net.Send(Msg(0, 1, MessageType::kPrepare));
  net.Send(Msg(2, 1, MessageType::kCommit));
  EXPECT_EQ(net.stats().delayed, 1u);
  auto first = net.NextDelivery();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MessageType::kCommit);
  // Only the held message remains; the clock skips to its release instead of
  // stalling, so the very next call delivers it.
  auto second = net.NextDelivery();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MessageType::kPrepare);
  EXPECT_GE(net.now(), 5u);
}

TEST(SimNetwork, ClearDelaysStopsTheStorm) {
  SimNetwork net(1);
  net.SetGlobalDelay(3, 3);
  net.Send(Msg(0, 1));
  net.ClearDelays();
  net.Send(Msg(0, 2));
  // The first message is still held under its sampled delay; the second is
  // immediate and overtakes it.
  auto m = net.NextDelivery();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to, GuardianId{2});
}

TEST(SimNetwork, EdgeDelayOverridesGlobalDelay) {
  SimNetwork net(1);
  net.SetGlobalDelay(10, 10);
  net.SetEdgeDelay(GuardianId{0}, GuardianId{1}, 0, 0);  // exempt this edge
  net.Send(Msg(0, 1));
  EXPECT_EQ(net.stats().delayed, 0u);
  EXPECT_TRUE(net.NextDelivery().has_value());
}

TEST(SimNetwork, DeliverAtIgnoresDelaysInSendOrder) {
  // The exhaustive-interleaving hook addresses the queue by send order and
  // bypasses the delay machinery entirely.
  SimNetwork net(1);
  net.SetEdgeDelay(GuardianId{0}, GuardianId{1}, 100, 100);
  net.Send(Msg(0, 1, MessageType::kPrepare));
  net.Send(Msg(0, 2, MessageType::kCommit));
  auto held = net.DeliverAt(0);
  ASSERT_TRUE(held.has_value());
  EXPECT_EQ(held->type, MessageType::kPrepare);
  EXPECT_FALSE(net.DeliverAt(5).has_value());
}

TEST(SimNetwork, DeterministicDelaysAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    SimNetwork net(seed);
    net.SetGlobalDelay(0, 4);
    std::string order;
    for (std::uint32_t i = 0; i < 16; ++i) {
      net.Send(Msg(0, 1 + (i % 3)));
    }
    while (auto m = net.NextDelivery()) {
      order += static_cast<char>('0' + m->to.value);
    }
    return order;
  };
  EXPECT_EQ(run(9), run(9));
}

TEST(Messages, ToStringRendersAllTypes) {
  EXPECT_EQ(Msg(0, 1, MessageType::kPrepare).ToString(), "prepare(T1@G0) G0->G1");
  Message ack = Msg(1, 0, MessageType::kPrepareAck);
  ack.positive = true;
  EXPECT_EQ(ack.ToString(), "prepare_ack(T1@G1) G1->G0 [yes]");
  Message reply = Msg(0, 1, MessageType::kQueryReply);
  EXPECT_EQ(reply.ToString(), "query_reply(T1@G0) G0->G1 [no]");
  for (MessageType type : {MessageType::kCommit, MessageType::kCommitAck, MessageType::kAbort,
                           MessageType::kQuery}) {
    EXPECT_FALSE(std::string(MessageTypeName(type)).empty());
  }
}

}  // namespace
}  // namespace argus
