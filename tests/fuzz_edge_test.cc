// Edge cases and seeded fuzzing at the decode boundaries: random byte soup
// must never crash the codecs, truncation at every offset must be rejected
// cleanly, and odd-but-legal values must round-trip.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/log/entry_codec.h"
#include "src/object/flatten.h"
#include "tests/test_support.h"

namespace argus {
namespace {

TEST(FuzzDecode, RandomBytesNeverCrashEntryCodec) {
  Rng rng(0xfeedface);
  for (int round = 0; round < 2000; ++round) {
    std::size_t len = rng.NextBelow(64);
    std::vector<std::byte> bytes(len);
    for (std::byte& b : bytes) {
      b = std::byte{static_cast<unsigned char>(rng.NextBelow(256))};
    }
    Result<LogEntry> decoded = DecodeEntry(AsSpan(bytes));
    // Either a clean decode or a clean error; never UB (run under sanitizers
    // in development).
    if (decoded.ok()) {
      // Whatever decoded must re-encode without crashing.
      std::vector<std::byte> re = EncodeEntry(decoded.value());
      EXPECT_FALSE(re.empty());
    }
  }
}

TEST(FuzzDecode, RandomBytesNeverCrashValueCodec) {
  Rng rng(0xdecade);
  for (int round = 0; round < 2000; ++round) {
    std::size_t len = rng.NextBelow(48);
    std::vector<std::byte> bytes(len);
    for (std::byte& b : bytes) {
      b = std::byte{static_cast<unsigned char>(rng.NextBelow(256))};
    }
    Result<Value> decoded = UnflattenValue(AsSpan(bytes));
    if (decoded.ok()) {
      std::vector<std::byte> re = FlattenValue(decoded.value(), nullptr);
      EXPECT_FALSE(re.empty());
    }
  }
}

TEST(FuzzDecode, BitflippedValidEntriesAreHandled) {
  // Take a valid encoded entry and flip every single bit: each variant must
  // decode cleanly-or-fail, never crash.
  PreparedEntry prepared;
  prepared.aid = Aid(3);
  prepared.objects = {{Uid{1}, LogAddress{10}}, {Uid{2}, LogAddress{20}}};
  prepared.prev = LogAddress{5};
  std::vector<std::byte> bytes = EncodeEntry(LogEntry(prepared));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::byte> mutated = bytes;
      mutated[i] ^= std::byte{static_cast<unsigned char>(1 << bit)};
      Result<LogEntry> decoded = DecodeEntry(AsSpan(mutated));
      if (decoded.ok()) {
        EncodeEntry(decoded.value());
      }
    }
  }
  SUCCEED();
}

TEST(ValueEdge, EmptyContainersRoundTrip) {
  for (const Value& v : {Value::OfList({}), Value::OfRecord({}), Value::Str("")}) {
    Result<Value> back = UnflattenValue(AsSpan(FlattenValue(v, nullptr)));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
  }
}

TEST(ValueEdge, ExtremeIntegersRoundTrip) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{-1},
                         std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()}) {
    Result<Value> back = UnflattenValue(AsSpan(FlattenValue(Value::Int(v), nullptr)));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().as_int(), v);
  }
}

TEST(ValueEdge, BinaryAndUnicodeStringsRoundTrip) {
  std::string binary;
  for (int i = 0; i < 256; ++i) {
    binary.push_back(static_cast<char>(i));
  }
  for (const std::string& s : {binary, std::string("héllo wörld — ヤバい"), std::string("\0x\0y", 4)}) {
    Result<Value> back = UnflattenValue(AsSpan(FlattenValue(Value::Str(s), nullptr)));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().as_str(), s);
  }
}

TEST(ValueEdge, RecordWithEmptyKeyRoundTrips) {
  Value v = Value::OfRecord({{"", Value::Int(1)}, {"k", Value::Nil()}});
  Result<Value> back = UnflattenValue(AsSpan(FlattenValue(v, nullptr)));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), v);
}

TEST(ValueEdge, LargePayloadRoundTripsThroughLog) {
  // A 1 MB object version through write → force → read → unflatten.
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  std::string big(1 << 20, 'B');
  RecoverableObject* obj = h.ctx(t1).CreateAtomic(h.heap(), Value::Str(big));
  ASSERT_TRUE(h.BindStable(t1, "big", obj).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("big")->base_version().as_str().size(), big.size());
}

TEST(ValueEdge, ManySmallObjectsInOneAction) {
  StorageHarness h(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  Value::List refs;
  for (int i = 0; i < 300; ++i) {
    refs.push_back(Value::Ref(h.ctx(t1).CreateAtomic(h.heap(), Value::Int(i))));
  }
  RecoverableObject* index = h.ctx(t1).CreateAtomic(h.heap(), Value::OfList(std::move(refs)));
  ASSERT_TRUE(h.BindStable(t1, "index", index).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t1).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  const Value::List& restored = h.StableVar("index")->base_version().as_list();
  ASSERT_EQ(restored.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(restored[static_cast<std::size_t>(i)].as_ref()->base_version(), Value::Int(i));
  }
}

TEST(LogEdge, ZeroLengthPayloadEntries) {
  auto log = MakeMemLog();
  DataEntry empty;
  empty.kind = ObjectKind::kAtomic;
  Result<LogAddress> addr = log->ForceWrite(LogEntry(empty));
  ASSERT_TRUE(addr.ok());
  Result<LogEntry> back = log->Read(addr.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(std::get<DataEntry>(back.value()).value.empty());
}

TEST(LogEdge, HugePreparedEntry) {
  auto log = MakeMemLog();
  PreparedEntry prepared;
  prepared.aid = Aid(1);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    prepared.objects.push_back(UidAddress{Uid{i}, LogAddress{i * 10}});
  }
  Result<LogAddress> addr = log->ForceWrite(LogEntry(prepared));
  ASSERT_TRUE(addr.ok());
  Result<LogEntry> back = log->Read(addr.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::get<PreparedEntry>(back.value()).objects.size(), 10000u);
}

}  // namespace
}  // namespace argus
