// Fault-injection tests at the media boundary: guardians running on the full
// duplexed Lampson-Sturgis stack, decayed pages healed at recovery, torn
// frames on plain-file logs truncated safely, and corrupt frames rejected.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "src/log/stable_log.h"
#include "src/stable/duplexed_medium.h"
#include "src/stable/file_medium.h"
#include "src/stable/replicated_medium.h"
#include "src/tpc/workload.h"
#include "tests/test_support.h"

namespace argus {
namespace {

RecoverySystemConfig DuplexedConfig() {
  RecoverySystemConfig config;
  config.mode = LogMode::kHybrid;
  config.medium_factory = [] { return std::make_unique<DuplexedStableMedium>(1234); };
  return config;
}

// N-way variant; `online_repair` additionally attaches a ReplicaRepairService
// to the incarnation so decayed pages heal while commits continue.
RecoverySystemConfig ReplicatedNConfig(std::uint32_t replicas, bool online_repair = false) {
  RecoverySystemConfig config;
  config.mode = LogMode::kHybrid;
  config.medium_factory = [replicas] {
    return std::make_unique<ReplicatedStableMedium>(replicas, 1234);
  };
  config.replicas = replicas;
  if (online_repair) {
    config.repair = ReplicaRepairConfig{};
  }
  return config;
}

// A storage harness variant on the duplexed / N-way replicated medium.
class DuplexedHarness {
 public:
  explicit DuplexedHarness(RecoverySystemConfig config = DuplexedConfig())
      : config_(std::move(config)) {
    heap_ = std::make_unique<VolatileHeap>();
    rs_ = std::make_unique<RecoverySystem>(config_, heap_.get());
  }

  VolatileHeap& heap() { return *heap_; }
  RecoverySystem& rs() { return *rs_; }

  Result<RecoveryInfo> CrashAndRecover() {
    std::unique_ptr<StableLog> log = rs_->TakeLog();
    rs_.reset();
    heap_.reset();
    heap_ = std::make_unique<VolatileHeap>();
    rs_ = std::make_unique<RecoverySystem>(config_, heap_.get(), std::move(log));
    return rs_->Recover();
  }

  ReplicatedStableMedium& medium() {
    return static_cast<ReplicatedStableMedium&>(rs_->log().medium());
  }

 private:
  RecoverySystemConfig config_;
  std::unique_ptr<VolatileHeap> heap_;
  std::unique_ptr<RecoverySystem> rs_;
};

void CommitValue(DuplexedHarness& h, std::uint64_t seq, std::int64_t value) {
  ActionId aid = Aid(seq);
  ActionContext ctx(aid);
  const Value& root = h.heap().root()->base_version();
  RecoverableObject* obj = nullptr;
  if (root.is_record() && root.as_record().contains("v")) {
    obj = root.as_record().at("v").as_ref();
    ASSERT_TRUE(ctx.WriteObject(obj, Value::Int(value)).ok());
  } else {
    obj = ctx.CreateAtomic(h.heap(), Value::Int(value));
    ASSERT_TRUE(ctx.UpdateObject(h.heap().root(), [&](Value& r) {
      r.as_record()["v"] = Value::Ref(obj);
    }).ok());
  }
  ASSERT_TRUE(h.rs().Prepare(aid, ctx.TakeMos()).ok());
  ASSERT_TRUE(h.rs().Commit(aid).ok());
  ctx.CommitVolatile(h.heap());
}

std::int64_t ReadValue(DuplexedHarness& h) {
  return h.heap().root()->base_version().as_record().at("v").as_ref()
      ->base_version().as_int();
}

TEST(DuplexedGuardian, CommitsSurviveCrash) {
  DuplexedHarness h;
  CommitValue(h, 1, 11);
  CommitValue(h, 2, 22);
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(ReadValue(h), 22);
}

TEST(DuplexedGuardian, SurvivesDecayOnOneReplica) {
  DuplexedHarness h;
  CommitValue(h, 1, 33);
  // Decay a handful of pages on disk A; B still has them, and recovery's
  // repair pass re-duplexes.
  ReplicatedStableMedium& medium = h.medium();
  for (std::size_t page = 1; page <= 3 && page < medium.store().page_count(); ++page) {
    medium.store().disk_a().CorruptPage(page);
  }
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(ReadValue(h), 33);
}

TEST(DuplexedGuardian, SurvivesDecayOnOtherReplica) {
  DuplexedHarness h;
  CommitValue(h, 1, 44);
  ReplicatedStableMedium& medium = h.medium();
  for (std::size_t page = 1; page <= 3 && page < medium.store().page_count(); ++page) {
    medium.store().disk_b().CorruptPage(page);
  }
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(ReadValue(h), 44);
}

TEST(DuplexedGuardian, DoubleReplicaLossIsDetectedNotSilent) {
  DuplexedHarness h;
  CommitValue(h, 1, 55);
  ReplicatedStableMedium& medium = h.medium();
  medium.store().disk_a().CorruptPage(1);
  medium.store().disk_b().CorruptPage(1);
  Result<RecoveryInfo> info = h.CrashAndRecover();
  // Stable storage failed for real; the system must say so, not fabricate.
  EXPECT_FALSE(info.ok());
}

TEST(DuplexedGuardian, ManyCommitsManyCrashes) {
  DuplexedHarness h;
  for (int round = 1; round <= 5; ++round) {
    CommitValue(h, static_cast<std::uint64_t>(round), round * 100);
    Result<RecoveryInfo> info = h.CrashAndRecover();
    ASSERT_TRUE(info.ok()) << "round " << round;
    EXPECT_EQ(ReadValue(h), round * 100);
  }
}

TEST(DuplexedMedium, TornAppendIsInvisibleAfterRecovery) {
  // A crash mid-append (torn page write) must leave the durable extent at its
  // pre-append value: the §1.1 atomicity property, derived not assumed.
  DuplexedStableMedium medium(77);
  std::vector<std::byte> first(300, std::byte{0x11});
  ASSERT_TRUE(medium.Append(AsSpan(first)).ok());

  DiskFaultPlan plan;
  plan.tear_write_at = 0;  // the very next write to disk A tears
  medium.store().disk_a().set_fault_plan(plan);
  std::vector<std::byte> second(300, std::byte{0x22});
  Status s = medium.Append(AsSpan(second));
  EXPECT_FALSE(s.ok());
  medium.store().disk_a().set_fault_plan(DiskFaultPlan{});

  ASSERT_TRUE(medium.RecoverAfterCrash().ok());
  EXPECT_EQ(medium.durable_size(), 300u);
  Result<std::vector<std::byte>> back = medium.Read(0, 300);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), first);
  // And the medium keeps working.
  ASSERT_TRUE(medium.Append(AsSpan(second)).ok());
  EXPECT_EQ(medium.durable_size(), 600u);
}

TEST(DuplexedGuardian, TornForceDuringPrepareActsLikeCrash) {
  DuplexedHarness h;
  CommitValue(h, 1, 10);

  // Arrange for the NEXT force (the prepare) to tear.
  ActionId t2 = Aid(2);
  ActionContext ctx(t2);
  RecoverableObject* v =
      h.heap().root()->base_version().as_record().at("v").as_ref();
  ASSERT_TRUE(ctx.WriteObject(v, Value::Int(20)).ok());
  DiskFaultPlan plan;
  plan.tear_write_at = 0;
  h.medium().store().disk_a().set_fault_plan(plan);
  Status s = h.rs().Prepare(t2, ctx.TakeMos());
  EXPECT_FALSE(s.ok());  // the machine "crashed" mid-force
  h.medium().store().disk_a().set_fault_plan(DiskFaultPlan{});

  // Restart: the action never prepared, so it aborts by default.
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info.value().pt.contains(t2));
  EXPECT_EQ(ReadValue(h), 10);
}

TEST(DuplexedGuardian, ConcurrentCommitsSurviveDecayOnOneReplica) {
  // Multi-threaded variant of the decay tests above: worker threads commit
  // through the full duplexed stack while disk A decays pages on every read
  // (CarefulRead falls back to the intact replica B mid-traffic), and the
  // recovery repair pass afterwards re-duplexes what decayed.
  SimWorldConfig world_config;
  world_config.guardian_count = 2;
  world_config.mode = LogMode::kHybrid;
  world_config.medium = MediumKind::kDuplexed;
  world_config.seed = 88;
  SimWorld world(world_config);

  WorkloadConfig config;
  config.seed = 88;
  config.threads = 3;
  config.abort_probability = 0.1;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());

  auto store_of = [&](std::uint32_t g) -> ReplicatedStore& {
    return static_cast<DuplexedStableMedium&>(world.guardian(g).recovery().log().medium())
        .store();
  };
  DiskFaultPlan decay;
  decay.decay_on_read_probability = 0.05;
  for (std::uint32_t g = 0; g < world.guardian_count(); ++g) {
    store_of(g).disk_a().set_fault_plan(decay);
  }
  Status s = driver.Run(120);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(driver.stats().committed, 0u);
  for (std::uint32_t g = 0; g < world.guardian_count(); ++g) {
    store_of(g).disk_a().set_fault_plan(DiskFaultPlan{});
  }

  // Deterministically decay a few written pages too, so there is provably
  // something for the repair pass to heal.
  std::vector<std::pair<std::uint32_t, std::size_t>> corrupted;
  for (std::uint32_t g = 0; g < world.guardian_count(); ++g) {
    ReplicatedStore& store = store_of(g);
    for (std::size_t page = 1; page <= 3 && page < store.page_count(); ++page) {
      if (!store.disk_a().PageIsBad(page)) {
        store.disk_a().CorruptPage(page);
        corrupted.emplace_back(g, page);
      }
    }
  }
  ASSERT_FALSE(corrupted.empty());

  // VerifyAfterCrash crashes and restarts every guardian: recovery's repair
  // pass must re-duplex from B, and the committed state must match the model.
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  for (const auto& [g, page] : corrupted) {
    EXPECT_FALSE(store_of(g).disk_a().PageIsBad(page))
        << "guardian " << g << " page " << page << " was not re-duplexed";
  }
}

// ---------------------------------------------------------------------------
// N-way replicated guardians: the decay matrix at N ∈ {3, 5}
// ---------------------------------------------------------------------------

class ReplicatedGuardianMatrix : public testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Replicas, ReplicatedGuardianMatrix, testing::Values(3u, 5u));

TEST_P(ReplicatedGuardianMatrix, SurvivesDecayOnAllButOneReplica) {
  const std::uint32_t n = GetParam();
  DuplexedHarness h(ReplicatedNConfig(n));
  CommitValue(h, 1, 66);
  ReplicatedStore& store = h.medium().store();
  std::vector<std::size_t> corrupted;
  for (std::size_t page = 1; page < store.page_count() && corrupted.size() < 3;
       ++page) {
    // Only decay genuinely-written pages: a blank page corrupted on n-1
    // replicas has no valid copy anywhere, and repair rightly leaves it.
    if (!store.disk(n - 1).PeekPage(page).ever_written) {
      continue;
    }
    for (std::uint32_t r = 0; r + 1 < n; ++r) {
      store.disk(r).CorruptPage(page);
    }
    corrupted.push_back(page);
  }
  ASSERT_FALSE(corrupted.empty());
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << "n=" << n << ": " << info.status().ToString();
  EXPECT_EQ(ReadValue(h), 66);
  // Recovery's repair pass re-replicated the decayed copies.
  ReplicatedStore& after = h.medium().store();
  for (std::uint32_t r = 0; r + 1 < n; ++r) {
    for (std::size_t page : corrupted) {
      EXPECT_FALSE(after.disk(r).PageIsBad(page)) << "n=" << n << " replica " << r;
    }
  }
}

TEST_P(ReplicatedGuardianMatrix, DecayMatrixAnySingleSurvivorSuffices) {
  // Rotate which replica survives: page p keeps only replica p % n intact, so
  // the repair pass must find winners at every probe position, not just the
  // low indices.
  const std::uint32_t n = GetParam();
  DuplexedHarness h(ReplicatedNConfig(n));
  CommitValue(h, 1, 77);
  CommitValue(h, 2, 88);
  ReplicatedStore& store = h.medium().store();
  std::size_t matrixed = 0;
  for (std::size_t page = 1; page < store.page_count(); ++page) {
    if (!store.disk(0).PeekPage(page).ever_written) {
      continue;
    }
    const std::uint32_t survivor = static_cast<std::uint32_t>(page % n);
    for (std::uint32_t r = 0; r < n; ++r) {
      if (r != survivor) {
        store.disk(r).CorruptPage(page);
      }
    }
    ++matrixed;
  }
  ASSERT_GT(matrixed, 0u);
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << "n=" << n << ": " << info.status().ToString();
  EXPECT_EQ(ReadValue(h), 88);
  ASSERT_TRUE(h.medium().store().VerifyConverged().ok());
}

TEST_P(ReplicatedGuardianMatrix, TotalReplicaLossIsDetectedNotSilent) {
  const std::uint32_t n = GetParam();
  DuplexedHarness h(ReplicatedNConfig(n));
  CommitValue(h, 1, 55);
  ReplicatedStore& store = h.medium().store();
  for (std::uint32_t r = 0; r < n; ++r) {
    store.disk(r).CorruptPage(1);
  }
  Result<RecoveryInfo> info = h.CrashAndRecover();
  EXPECT_FALSE(info.ok());
}

TEST(ReplicatedGuardian, OnlineRepairHealsDecayWithoutRestart) {
  // With config.repair set, the incarnation runs a ReplicaRepairService: a
  // decayed page heals in the background — no crash, no Recover() — while
  // commits keep flowing.
  DuplexedHarness h(ReplicatedNConfig(3, /*online_repair=*/true));
  ASSERT_NE(h.rs().repair_service(), nullptr);
  CommitValue(h, 1, 99);
  ReplicatedStore& store = h.medium().store();
  store.disk(0).CorruptPage(1);
  for (int i = 0; i < 5000 && store.disk(0).PageIsBad(1); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(store.disk(0).PageIsBad(1)) << "scrub never healed the page";
  CommitValue(h, 2, 100);
  EXPECT_EQ(ReadValue(h), 100);
  EXPECT_GE(h.rs().repair_service()->StatsSnapshot().passes, 1u);
}

TEST(FileLog, ReopenResumesDurableEntries) {
  std::string path = testing::TempDir() + "/argus_file_log_test.log";
  std::remove(path.c_str());
  LogAddress a2;
  {
    Result<std::unique_ptr<FileStableMedium>> medium = FileStableMedium::Open(path);
    ASSERT_TRUE(medium.ok());
    StableLog log(std::move(medium).value());
    ASSERT_TRUE(log.ForceWrite(LogEntry(CommittedEntry{Aid(1)})).ok());
    Result<LogAddress> r = log.ForceWrite(LogEntry(CommittedEntry{Aid(2)}));
    ASSERT_TRUE(r.ok());
    a2 = r.value();
  }
  {
    Result<std::unique_ptr<FileStableMedium>> medium = FileStableMedium::Open(path);
    ASSERT_TRUE(medium.ok());
    StableLog log(std::move(medium).value());
    ASSERT_FALSE(log.empty());
    EXPECT_EQ(log.GetTop().value(), a2);
    Result<LogEntry> top = log.Read(a2);
    ASSERT_TRUE(top.ok());
    EXPECT_EQ(std::get<CommittedEntry>(top.value()).aid.sequence, 2u);
  }
  std::remove(path.c_str());
}

TEST(FileLog, TornTailIsLogicallyTruncated) {
  std::string path = testing::TempDir() + "/argus_torn_tail_test.log";
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<FileStableMedium>> medium = FileStableMedium::Open(path);
    ASSERT_TRUE(medium.ok());
    StableLog log(std::move(medium).value());
    ASSERT_TRUE(log.ForceWrite(LogEntry(CommittedEntry{Aid(1)})).ok());
    ASSERT_TRUE(log.ForceWrite(LogEntry(CommittedEntry{Aid(2)})).ok());
  }
  // Tear the last frame: chop a few bytes off the file.
  {
    FILE* f = std::fopen(path.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(::truncate(path.c_str(), size - 5), 0);
  }
  {
    Result<std::unique_ptr<FileStableMedium>> medium = FileStableMedium::Open(path);
    ASSERT_TRUE(medium.ok());
    StableLog log(std::move(medium).value());
    // Only the first entry survives; the torn one is invisible.
    Result<LogEntry> top = log.Read(log.GetTop().value());
    ASSERT_TRUE(top.ok());
    EXPECT_EQ(std::get<CommittedEntry>(top.value()).aid.sequence, 1u);
  }
  std::remove(path.c_str());
}

TEST(FileLog, GuardianOnFileMediumRoundTrip) {
  std::string path = testing::TempDir() + "/argus_file_guardian_test.log";
  std::remove(path.c_str());
  RecoverySystemConfig config;
  config.mode = LogMode::kHybrid;
  config.medium_factory = [path] {
    Result<std::unique_ptr<FileStableMedium>> medium = FileStableMedium::Open(path);
    ARGUS_CHECK(medium.ok());
    return std::move(medium).value();
  };

  {
    VolatileHeap heap;
    RecoverySystem rs(config, &heap);
    ActionId t1 = Aid(1);
    ActionContext ctx(t1);
    RecoverableObject* obj = ctx.CreateAtomic(heap, Value::Str("durable"));
    ASSERT_TRUE(ctx.UpdateObject(heap.root(), [&](Value& r) {
      r.as_record()["v"] = Value::Ref(obj);
    }).ok());
    ASSERT_TRUE(rs.Prepare(t1, ctx.TakeMos()).ok());
    ASSERT_TRUE(rs.Commit(t1).ok());
  }  // process "dies"; the file persists

  {
    VolatileHeap heap;
    // Reopen the SAME file as the surviving log.
    Result<std::unique_ptr<FileStableMedium>> medium = FileStableMedium::Open(path);
    ASSERT_TRUE(medium.ok());
    RecoverySystem rs(config, &heap, std::make_unique<StableLog>(std::move(medium).value()));
    Result<RecoveryInfo> info = rs.Recover();
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    RecoverableObject* v = heap.root()->base_version().as_record().at("v").as_ref();
    EXPECT_EQ(v->base_version(), Value::Str("durable"));
  }
  std::remove(path.c_str());
}

TEST(LogCorruption, FlippedBitIsDetected) {
  // In-memory medium with a deliberately flipped byte: the CRC must catch it.
  auto medium = std::make_unique<InMemoryStableMedium>();
  InMemoryStableMedium* medium_ptr = medium.get();
  StableLog log(std::move(medium));
  Result<LogAddress> addr = log.ForceWrite(LogEntry(CommittedEntry{Aid(1)}));
  ASSERT_TRUE(addr.ok());
  // Corrupt a payload byte through a read-modify-write of the raw bytes.
  Result<std::vector<std::byte>> raw = medium_ptr->Read(0, log.durable_size());
  ASSERT_TRUE(raw.ok());
  // Rebuild the medium bytes with a flip in the middle of the payload.
  auto corrupted = std::make_unique<InMemoryStableMedium>();
  std::vector<std::byte> bytes = raw.value();
  bytes[8] ^= std::byte{0x40};
  ASSERT_TRUE(corrupted->Append(AsSpan(bytes)).ok());
  StableLog bad(std::move(corrupted));
  EXPECT_FALSE(bad.Read(LogAddress{0}).ok());
  // RecoverAfterCrash treats it as a torn tail → zero entries.
  Result<std::uint64_t> recovered = bad.RecoverAfterCrash();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 0u);
}

}  // namespace
}  // namespace argus
