// Tests for housekeeping (chapter 5): log compaction and stable-state
// snapshot, including activity between the two stages, prepared-action
// carry-over, mutex latest-version preservation, and recovery bounds.

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace argus {
namespace {

struct Method {
  HousekeepingMethod method;
  const char* name;
};

class HousekeepingTest : public testing::TestWithParam<Method> {};

INSTANTIATE_TEST_SUITE_P(Both, HousekeepingTest,
                         testing::Values(Method{HousekeepingMethod::kCompaction, "compaction"},
                                         Method{HousekeepingMethod::kSnapshot, "snapshot"}),
                         [](const auto& info) { return info.param.name; });

void Seed(StorageHarness& h) {
  ActionId t0 = Aid(100);
  RecoverableObject* a = h.ctx(t0).CreateAtomic(h.heap(), Value::Int(0));
  RecoverableObject* m = h.ctx(t0).CreateMutex(h.heap(), Value::Int(0));
  ASSERT_TRUE(h.BindStable(t0, "a", a).ok());
  ASSERT_TRUE(h.BindStable(t0, "m", m).ok());
  ASSERT_TRUE(h.PrepareAndCommit(t0).ok());
}

// Runs n committed modifications of "a".
void Churn(StorageHarness& h, std::uint64_t base_seq, int n) {
  for (int i = 0; i < n; ++i) {
    ActionId t = Aid(base_seq + static_cast<std::uint64_t>(i));
    ASSERT_TRUE(h.ctx(t).WriteObject(h.StableVar("a"),
                                     Value::Int(static_cast<std::int64_t>(i + 1))).ok());
    ASSERT_TRUE(h.PrepareAndCommit(t).ok());
  }
}

TEST_P(HousekeepingTest, ShrinksTheLog) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  Churn(h, 1, 50);
  std::uint64_t before = h.rs().log().durable_size();
  ASSERT_TRUE(h.rs().Housekeep(GetParam().method).ok());
  std::uint64_t after = h.rs().log().durable_size();
  EXPECT_LT(after, before / 4) << "log should shrink dramatically";
}

TEST_P(HousekeepingTest, StateSurvivesCheckpointAndCrash) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  Churn(h, 1, 30);
  ActionId tm = Aid(60);
  ASSERT_TRUE(h.ctx(tm).MutateMutex(h.StableVar("m"),
                                    [](Value& v) { v = Value::Int(77); }).ok());
  ASSERT_TRUE(h.PrepareAndCommit(tm).ok());

  ASSERT_TRUE(h.rs().Housekeep(GetParam().method).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(30));
  EXPECT_EQ(h.StableVar("m")->mutex_value(), Value::Int(77));
}

TEST_P(HousekeepingTest, WorksRepeatedly) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  for (int round = 0; round < 3; ++round) {
    Churn(h, 1 + static_cast<std::uint64_t>(round) * 100, 10);
    ASSERT_TRUE(h.rs().Housekeep(GetParam().method).ok());
  }
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(10));
}

TEST_P(HousekeepingTest, PreparedUndecidedActionSurvivesCheckpoint) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  Churn(h, 1, 10);
  ActionId tp = Aid(50);
  ASSERT_TRUE(h.ctx(tp).WriteObject(h.StableVar("a"), Value::Int(999)).ok());
  ASSERT_TRUE(h.PrepareOnly(tp).ok());

  ASSERT_TRUE(h.rs().Housekeep(GetParam().method).ok());
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // The action is still prepared; its tentative version is intact.
  EXPECT_EQ(info.value().pt.at(tp), ParticipantState::kPrepared);
  RecoverableObject* a = h.StableVar("a");
  EXPECT_EQ(a->base_version(), Value::Int(10));
  EXPECT_EQ(a->current_version(), Value::Int(999));
  EXPECT_TRUE(a->HoldsWriteLock(tp));

  // It can still commit after the crash.
  ASSERT_TRUE(h.rs().Commit(tp).ok());
  a->CommitAction(tp);
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(999));
}

TEST_P(HousekeepingTest, MutexOnlyPreparedActionKeepsPreparedState) {
  // Deviation D1: a prepared action that touched only mutex objects must not
  // lose its prepared record across a checkpoint.
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  ActionId tp = Aid(50);
  ASSERT_TRUE(h.ctx(tp).MutateMutex(h.StableVar("m"),
                                    [](Value& v) { v = Value::Int(5); }).ok());
  ASSERT_TRUE(h.PrepareOnly(tp).ok());

  ASSERT_TRUE(h.rs().Housekeep(GetParam().method).ok());
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().pt.at(tp), ParticipantState::kPrepared);
  EXPECT_EQ(h.StableVar("m")->mutex_value(), Value::Int(5));
}

TEST_P(HousekeepingTest, AbortedActionsVanishButPreparedMutexSurvives) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  ActionId ta = Aid(50);
  ASSERT_TRUE(h.ctx(ta).WriteObject(h.StableVar("a"), Value::Int(123)).ok());
  ASSERT_TRUE(h.ctx(ta).MutateMutex(h.StableVar("m"),
                                    [](Value& v) { v = Value::Int(123); }).ok());
  ASSERT_TRUE(h.PrepareOnly(ta).ok());
  ASSERT_TRUE(h.AbortPrepared(ta).ok());

  ASSERT_TRUE(h.rs().Housekeep(GetParam().method).ok());
  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(0));     // rolled back
  EXPECT_EQ(h.StableVar("m")->mutex_value(), Value::Int(123));    // prepared mutex holds
}

TEST_P(HousekeepingTest, ActivityBetweenStagesIsCarriedOver) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  Churn(h, 1, 10);

  // Between stage 1 and stage 2, more actions commit against the old log.
  Status s = h.rs().Housekeep(GetParam().method, [&] {
    for (std::uint64_t i = 0; i < 5; ++i) {
      ActionId t = Aid(200 + i);
      ASSERT_TRUE(h.ctx(t).WriteObject(h.StableVar("a"),
                                       Value::Int(static_cast<std::int64_t>(1000 + i))).ok());
      ASSERT_TRUE(h.PrepareAndCommit(t).ok());
    }
  });
  ASSERT_TRUE(s.ok()) << s.ToString();

  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(1004));
}

TEST_P(HousekeepingTest, PrepareBetweenStagesSurvives) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  Churn(h, 1, 5);
  ActionId tp = Aid(300);
  Status s = h.rs().Housekeep(GetParam().method, [&] {
    ASSERT_TRUE(h.ctx(tp).WriteObject(h.StableVar("a"), Value::Int(555)).ok());
    ASSERT_TRUE(h.PrepareOnly(tp).ok());
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().pt.at(tp), ParticipantState::kPrepared);
  EXPECT_EQ(h.StableVar("a")->current_version(), Value::Int(555));
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(5));
}

TEST_P(HousekeepingTest, EarlyPreparedUnpreparedActionIsRewritten) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  ActionId te = Aid(400);
  ASSERT_TRUE(h.ctx(te).WriteObject(h.StableVar("a"), Value::Int(42)).ok());
  ASSERT_TRUE(h.rs().WriteEntry(te, h.ctx(te).TakeMos()).ok());

  // The checkpoint swaps logs; the early-prepared data must be rewritten so
  // a later prepare still covers it.
  ASSERT_TRUE(h.rs().Housekeep(GetParam().method).ok());
  ASSERT_TRUE(h.rs().Prepare(te, {}).ok());
  ASSERT_TRUE(h.rs().Commit(te).ok());
  h.ctx(te).CommitVolatile(h.heap());

  ASSERT_TRUE(h.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(42));
}

TEST_P(HousekeepingTest, RecoveryAfterCheckpointIsBounded) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  Churn(h, 1, 100);
  Result<RecoveryInfo> before = h.CrashAndRecover();
  ASSERT_TRUE(before.ok());
  std::uint64_t entries_before = before.value().entries_examined;

  ASSERT_TRUE(h.rs().Housekeep(GetParam().method).ok());
  Result<RecoveryInfo> after = h.CrashAndRecover();
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after.value().entries_examined, entries_before / 4)
      << "checkpoint must bound the recovery scan";
  EXPECT_EQ(h.StableVar("a")->base_version(), Value::Int(100));
}

TEST_P(HousekeepingTest, CoordinatorCommittingEntrySurvives) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  ActionId tc = Aid(500);
  ASSERT_TRUE(h.rs().Committing(tc, {GuardianId{1}, GuardianId{2}}).ok());
  ASSERT_TRUE(h.rs().Housekeep(GetParam().method).ok());
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(info.value().ct.contains(tc));
  EXPECT_EQ(info.value().ct.at(tc).phase, CoordinatorPhase::kCommitting);
  EXPECT_EQ(info.value().ct.at(tc).participants.size(), 2u);
}

TEST_P(HousekeepingTest, DoneCoordinatorEntryIsDropped) {
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  ActionId tc = Aid(500);
  ASSERT_TRUE(h.rs().Committing(tc, {GuardianId{1}}).ok());
  ASSERT_TRUE(h.rs().Done(tc).ok());
  ASSERT_TRUE(h.rs().Housekeep(GetParam().method).ok());
  Result<RecoveryInfo> info = h.CrashAndRecover();
  ASSERT_TRUE(info.ok());
  // Finished coordination work need not survive the checkpoint.
  EXPECT_FALSE(info.value().ct.contains(tc));
}

TEST(HousekeepingMode, RejectedOnSimpleLog) {
  StorageHarness h(LogMode::kSimple);
  EXPECT_EQ(h.rs().Housekeep(HousekeepingMethod::kCompaction).code(),
            ErrorCode::kInvalidArgument);
}

TEST(HousekeepingCost, SnapshotScalesWithLiveSetNotLogLength) {
  // §5.3: snapshot work ∝ accessible objects; compaction must grind through
  // every outcome entry of the old log.
  StorageHarness h(LogMode::kHybrid);
  Seed(h);
  Churn(h, 1, 200);  // long history, tiny live set

  StorageHarness h2(LogMode::kHybrid);
  Seed(h2);
  Churn(h2, 1, 200);

  // Compaction processes every outcome entry (~2 per churned action).
  ASSERT_TRUE(h.rs().Housekeep(HousekeepingMethod::kCompaction).ok());
  // Snapshot touches the live objects (3: root, a, m).
  ASSERT_TRUE(h2.rs().Housekeep(HousekeepingMethod::kSnapshot).ok());
  // Both lead to the same recovered state.
  ASSERT_TRUE(h.CrashAndRecover().ok());
  ASSERT_TRUE(h2.CrashAndRecover().ok());
  EXPECT_EQ(h.StableVar("a")->base_version(), h2.StableVar("a")->base_version());
}

}  // namespace
}  // namespace argus
