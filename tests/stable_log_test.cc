// Tests for the stable log abstraction (§3.1): write/force semantics,
// addressing, cursors, and crash behavior of the staged tail.

#include <gtest/gtest.h>

#include <cstring>

#include "src/log/stable_log.h"
#include "src/stable/duplexed_medium.h"
#include "src/stable/shard_map.h"
#include "tests/test_support.h"

namespace argus {
namespace {

LogEntry Committed(std::uint64_t seq) { return LogEntry(CommittedEntry{Aid(seq)}); }

DataEntry SmallData(std::uint8_t fill) {
  DataEntry d;
  d.kind = ObjectKind::kAtomic;
  d.value = std::vector<std::byte>(8, std::byte{fill});
  return d;
}

TEST(StableLog, EmptyLogHasNoTop) {
  auto log = MakeMemLog();
  EXPECT_TRUE(log->empty());
  EXPECT_FALSE(log->GetTop().has_value());
}

TEST(StableLog, WriteIsNotDurableUntilForce) {
  auto log = MakeMemLog();
  log->Write(Committed(1));
  EXPECT_FALSE(log->GetTop().has_value());
  EXPECT_EQ(log->durable_size(), 0u);
  ASSERT_TRUE(log->Force().ok());
  EXPECT_TRUE(log->GetTop().has_value());
  EXPECT_GT(log->durable_size(), 0u);
}

TEST(StableLog, ForceWriteFlushesOlderStagedEntries) {
  auto log = MakeMemLog();
  LogAddress a = log->Write(Committed(1));
  LogAddress b = log->Write(Committed(2));
  Result<LogAddress> c = log->ForceWrite(Committed(3));
  ASSERT_TRUE(c.ok());
  // All three are durable and readable.
  EXPECT_TRUE(log->Read(a).ok());
  EXPECT_TRUE(log->Read(b).ok());
  EXPECT_EQ(log->GetTop().value(), c.value());
  EXPECT_EQ(log->stats().forces, 1u);
}

TEST(StableLog, ReadReturnsWrittenEntry) {
  auto log = MakeMemLog();
  Result<LogAddress> addr = log->ForceWrite(LogEntry(SmallData(0x5a)));
  ASSERT_TRUE(addr.ok());
  Result<LogEntry> entry = log->Read(addr.value());
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(std::get<DataEntry>(entry.value()), SmallData(0x5a));
}

TEST(StableLog, ReadServesStagedEntries) {
  auto log = MakeMemLog();
  LogAddress addr = log->Write(LogEntry(SmallData(0x77)));
  Result<LogEntry> entry = log->Read(addr);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(std::get<DataEntry>(entry.value()), SmallData(0x77));
}

TEST(StableLog, ReadPastEndFails) {
  auto log = MakeMemLog();
  ASSERT_TRUE(log->ForceWrite(Committed(1)).ok());
  EXPECT_FALSE(log->Read(LogAddress{100000}).ok());
}

TEST(StableLog, BackwardCursorVisitsAllEntriesNewestFirst) {
  auto log = MakeMemLog();
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(log->ForceWrite(Committed(i)).ok());
  }
  StableLog::BackwardCursor cursor = log->ReadBackwardFromTop();
  for (std::uint64_t i = 5; i >= 1; --i) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next.value().has_value());
    EXPECT_EQ(std::get<CommittedEntry>(next.value()->second).aid.sequence, i);
  }
  auto end = cursor.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end.value().has_value());
}

TEST(StableLog, ForwardCursorVisitsAllEntriesOldestFirst) {
  auto log = MakeMemLog();
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(log->ForceWrite(Committed(i)).ok());
  }
  log->Write(Committed(5));  // staged entries are iterated too
  StableLog::ForwardCursor cursor = log->ReadForwardFrom(0);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next.value().has_value()) << i;
    EXPECT_EQ(std::get<CommittedEntry>(next.value()->second).aid.sequence, i);
  }
  auto end = cursor.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end.value().has_value());
}

TEST(StableLog, CrashDiscardsStagedTail) {
  auto log = MakeMemLog();
  ASSERT_TRUE(log->ForceWrite(Committed(1)).ok());
  LogAddress durable_top = log->GetTop().value();
  log->Write(Committed(2));
  log->Write(Committed(3));
  Result<std::uint64_t> recovered = log->RecoverAfterCrash();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 1u);
  EXPECT_EQ(log->GetTop().value(), durable_top);
  // The staged entries are gone.
  EXPECT_FALSE(log->Read(LogAddress{durable_top.offset + 1000}).ok());
}

TEST(StableLog, RecoverAfterCrashFindsTopOnDuplexedMedium) {
  auto log = std::make_unique<StableLog>(std::make_unique<DuplexedStableMedium>());
  LogAddress a1;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    Result<LogAddress> r = log->ForceWrite(Committed(i));
    ASSERT_TRUE(r.ok());
    a1 = r.value();
  }
  Result<std::uint64_t> recovered = log->RecoverAfterCrash();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 3u);
  EXPECT_EQ(log->GetTop().value(), a1);
  Result<LogEntry> top = log->Read(log->GetTop().value());
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(std::get<CommittedEntry>(top.value()).aid.sequence, 3u);
}

TEST(StableLog, AddressesAreStableAcrossForce) {
  auto log = MakeMemLog();
  LogAddress staged = log->Write(LogEntry(SmallData(0x01)));
  ASSERT_TRUE(log->Force().ok());
  Result<LogEntry> entry = log->Read(staged);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(std::get<DataEntry>(entry.value()), SmallData(0x01));
}

TEST(StableLog, MixedEntrySizesBackwardWalk) {
  auto log = MakeMemLog();
  std::vector<LogAddress> addrs;
  for (int i = 0; i < 20; ++i) {
    DataEntry d;
    d.kind = ObjectKind::kAtomic;
    d.value = std::vector<std::byte>(static_cast<std::size_t>(1 + 37 * i), std::byte{1});
    addrs.push_back(log->Write(LogEntry(d)));
  }
  ASSERT_TRUE(log->Force().ok());
  StableLog::BackwardCursor cursor = log->ReadBackwardFromTop();
  for (int i = 19; i >= 0; --i) {
    auto next = cursor.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next.value().has_value());
    EXPECT_EQ(next.value()->first, addrs[static_cast<std::size_t>(i)]);
  }
}

TEST(StableLog, StatsCountWritesAndForces) {
  auto log = MakeMemLog();
  log->Write(Committed(1));
  log->Write(Committed(2));
  ASSERT_TRUE(log->Force().ok());
  ASSERT_TRUE(log->ForceWrite(Committed(3)).ok());
  EXPECT_EQ(log->stats().entries_written, 3u);
  EXPECT_EQ(log->stats().forces, 2u);
  EXPECT_GT(log->stats().bytes_forced, 0u);
}

TEST(StableLog, EmptyForceIsANoop) {
  auto log = MakeMemLog();
  ASSERT_TRUE(log->Force().ok());
  EXPECT_EQ(log->stats().forces, 0u);
}

// ---- Shard map (sharded guardians route uid -> log shard through this) ----

ShardMapRecord SampleRecord() {
  ShardMapRecord r;
  r.version = 7;
  r.num_shards = 4;
  r.salt = 0xfeedface12345678ull;
  r.overrides.emplace_back(Uid{42}, 3u);
  r.overrides.emplace_back(Uid{77}, 0u);
  return r;
}

TEST(ShardMap, CodecRoundTrip) {
  ShardMapRecord r = SampleRecord();
  std::vector<std::byte> bytes = EncodeShardMapRecord(r);
  Result<ShardMapRecord> decoded = DecodeShardMapRecord(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded.value(), r);
}

TEST(ShardMap, CodecRoundTripEmptyOverrides) {
  ShardMapRecord r;
  r.version = 0;
  r.num_shards = 1;
  r.salt = 0;
  Result<ShardMapRecord> decoded = DecodeShardMapRecord(EncodeShardMapRecord(r));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), r);
}

TEST(ShardMap, CodecRejectsEverySingleByteDecay) {
  // A decayed page can flip any byte; the CRC trailer must catch all of them.
  std::vector<std::byte> bytes = EncodeShardMapRecord(SampleRecord());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::byte> bad = bytes;
    bad[i] ^= std::byte{0x40};
    EXPECT_FALSE(DecodeShardMapRecord(bad).ok()) << "byte " << i << " flip went undetected";
  }
}

TEST(ShardMap, CodecRejectsTruncation) {
  std::vector<std::byte> bytes = EncodeShardMapRecord(SampleRecord());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        DecodeShardMapRecord(std::span<const std::byte>(bytes.data(), len)).ok())
        << "truncation to " << len << " bytes went undetected";
  }
}

TEST(ShardMap, StoreRecoversNewestVersion) {
  ShardMapStore store(std::make_unique<InMemoryStableMedium>());
  ShardMapRecord v0 = SampleRecord();
  v0.version = 0;
  ShardMapRecord v1 = SampleRecord();
  v1.version = 1;
  v1.overrides.clear();
  ASSERT_TRUE(store.Put(v0).ok());
  ASSERT_TRUE(store.Put(v1).ok());
  Result<ShardMapRecord> recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), v1);
}

TEST(ShardMap, StoreEmptyMediumIsNotFound) {
  ShardMapStore store(std::make_unique<InMemoryStableMedium>());
  Result<ShardMapRecord> recovered = store.Recover();
  EXPECT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), ErrorCode::kNotFound);
}

TEST(ShardMap, StoreTornTailFallsBackToPreviousRecord) {
  ShardMapStore store(std::make_unique<InMemoryStableMedium>());
  ShardMapRecord v0 = SampleRecord();
  ASSERT_TRUE(store.Put(v0).ok());
  // A torn append: a frame header promising more bytes than the medium holds
  // (the crash cut the write short). Recovery must stop there and keep v0.
  std::vector<std::byte> torn = {std::byte{0xff}, std::byte{0x00}, std::byte{0x00},
                                 std::byte{0x00}, std::byte{0xab}};
  ASSERT_TRUE(store.medium().Append(torn).ok());
  Result<ShardMapRecord> recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), v0);
}

TEST(ShardMap, StoreDecayedTailFallsBackToPreviousRecord) {
  ShardMapStore store(std::make_unique<InMemoryStableMedium>());
  ShardMapRecord v0 = SampleRecord();
  v0.version = 0;
  ASSERT_TRUE(store.Put(v0).ok());
  // A well-framed but decayed record: right length prefix, garbage payload.
  ShardMapRecord v1 = SampleRecord();
  v1.version = 1;
  std::vector<std::byte> payload = EncodeShardMapRecord(v1);
  payload[payload.size() / 2] ^= std::byte{0x01};
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::byte> frame(4);
  std::memcpy(frame.data(), &len, 4);
  frame.insert(frame.end(), payload.begin(), payload.end());
  ASSERT_TRUE(store.medium().Append(frame).ok());
  Result<ShardMapRecord> recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), v0);
}

TEST(ShardRouter, RootPinsToShardZeroAndOverridesWin) {
  ShardMapRecord r = SampleRecord();
  ShardRouter router(r);
  EXPECT_EQ(router.ShardOf(Uid::Root()), 0u);
  EXPECT_EQ(router.ShardOf(Uid{42}), 3u);   // override
  EXPECT_EQ(router.ShardOf(Uid{77}), 0u);   // override
  for (std::uint64_t u = 1; u < 200; ++u) {
    std::uint32_t shard = router.ShardOf(Uid{u});
    EXPECT_LT(shard, r.num_shards);
    EXPECT_EQ(shard, router.ShardOf(Uid{u}));  // deterministic
  }
}

TEST(ShardRouter, HomeShardIsDeterministicAndInRange) {
  ShardRouter router(SampleRecord());
  for (std::uint64_t seq = 1; seq < 100; ++seq) {
    ActionId aid{GuardianId{2}, seq};
    std::uint32_t home = router.HomeShardOf(aid);
    EXPECT_LT(home, router.num_shards());
    EXPECT_EQ(home, router.HomeShardOf(aid));
  }
}

}  // namespace
}  // namespace argus
