#include <gtest/gtest.h>
TEST(Placeholder_scenario_test, Pending) { SUCCEED(); }
