// Partial-world failure injection (DESIGN.md "Distributed failures",
// experiment E13): asymmetric guardian crashes, partition storms, and
// survivor-liveness properties.
//
// Two halves:
//   1. Serial, network-driven 2PC: multi-participant actions where a subset
//      of guardians dies or is partitioned mid-protocol, with the tick-based
//      timeouts (coordinator prepare timeout, participant query retry)
//      resolving everything the presumed-abort way — §2.2's claim that a
//      partial failure never wedges the survivors.
//   2. The concurrent storm: seeded sweeps of the workload driver where a
//      worker's rng kills 1..N-1 guardians at the rendezvous while the
//      survivors keep serving traffic through the partition. The recover
//      event asserts survivor liveness (the committed count grew by the
//      configured floor during the outage), reconciles every victim against
//      its journal's durable prefix, and holds every survivor to a
//      full-replay reconcile.
//
// The suite carries the `distributed` ctest label (CI sweeps it separately);
// the concurrent half also carries `concurrency` semantics via the shared
// driver, which CI runs under TSan through the crash-storm suites.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tpc/workload.h"
#include "tests/test_support.h"

namespace argus {
namespace {

SimWorldConfig DistWorld(std::size_t guardians, std::uint64_t seed,
                         GuardianTimeoutConfig timeouts = {}) {
  SimWorldConfig config;
  config.guardian_count = guardians;
  config.mode = LogMode::kHybrid;
  config.seed = seed;
  config.timeouts = timeouts;
  return config;
}

void SeedVar(SimWorld& world, GuardianId gid, const std::string& name, std::int64_t value) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(gid, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, gid, [&](Guardian& g, ActionContext& ctx) -> Status {
          RecoverableObject* obj = ctx.CreateAtomic(g.heap(), Value::Int(value));
          return g.SetStableVariable(aid, name, obj);
        });
      });
  ASSERT_TRUE(fate.ok());
  ASSERT_EQ(fate.value(), Guardian::ActionFate::kCommitted);
}

std::int64_t ReadVar(SimWorld& world, GuardianId gid, const std::string& name) {
  RecoverableObject* obj = world.guardian(gid).CommittedStableVariable(name);
  return obj == nullptr ? -1 : obj->base_version().as_int();
}

// Starts an increment of `name` at every guardian in `targets`, coordinated
// by guardian 0. Returns the action; the caller drives commit.
Result<ActionId> StartSpread(SimWorld& world, const std::vector<std::uint32_t>& targets,
                             const std::string& name) {
  Guardian& g0 = world.guardian(0);
  ActionId aid = g0.BeginTopAction();
  for (std::uint32_t t : targets) {
    Status s = world.RunAt(aid, GuardianId{t}, [&](Guardian& g, ActionContext& ctx) -> Status {
      Result<RecoverableObject*> v = g.GetStableVariable(aid, name);
      if (!v.ok()) {
        return v.status();
      }
      return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(b.as_int() + 1); });
    });
    if (!s.ok()) {
      g0.AbortTopAction(aid);
      world.Pump();
      return s;
    }
  }
  return aid;
}

// ---------------------------------------------------------------------------
// Serial: timeouts and presumed abort under partitions
// ---------------------------------------------------------------------------

TEST(PartialWorld, PrepareTimeoutAbortsStuckCoordinator) {
  GuardianTimeoutConfig timeouts;
  timeouts.prepare_timeout = 3;
  SimWorld world(DistWorld(3, 51, timeouts));
  SeedVar(world, GuardianId{1}, "x", 0);
  SeedVar(world, GuardianId{2}, "x", 0);
  const std::uint64_t timeouts_before = obs::GetCounter("tpc.timeouts")->Value();

  // Guardian 2 drops off the network before the prepare reaches it.
  world.network().Partition(GuardianId{2});
  Result<ActionId> aid = StartSpread(world, {1, 2}, "x");
  ASSERT_TRUE(aid.ok());
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid.value()).ok());

  // Guardian 1 prepares and holds its lock; guardian 2 never answers. The
  // coordinator must NOT wedge: after prepare_timeout ticks it gives up and
  // aborts unilaterally (§2.2.1).
  world.PumpWithTime();
  EXPECT_EQ(world.guardian(0).FateOf(aid.value()), Guardian::ActionFate::kAborted);
  EXPECT_EQ(world.guardian(1).FateOf(aid.value()), Guardian::ActionFate::kAborted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 0);
  EXPECT_GE(obs::GetCounter("tpc.timeouts")->Value(), timeouts_before + 1);

  // The survivor's lock was released by the abort. Guardian 2 still holds
  // its volatile lock from the body call — it never prepared, so it has
  // nothing to re-query; in the §2.2.1 failure model the isolated node
  // crashes and its volatile locks die with it. Recover it and rejoin.
  world.guardian(2).Crash();
  ASSERT_TRUE(world.guardian(2).Restart().ok());
  world.network().Heal(GuardianId{2});
  Result<ActionId> next = StartSpread(world, {1, 2}, "x");
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(world.guardian(0).RequestCommit(next.value()).ok());
  world.PumpWithTime();
  EXPECT_EQ(world.guardian(0).FateOf(next.value()), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
  EXPECT_EQ(ReadVar(world, GuardianId{2}, "x"), 1);
}

TEST(PartialWorld, QueryRetryResolvesInDoubtParticipantAsPresumedAbort) {
  // The §2.2.2/§2.2.3 end-to-end: a participant prepares, its coordinator
  // crashes BEFORE writing the committing record, and the participant's
  // periodic re-query — driven purely by ticks — resolves the in-doubt
  // action as a presumed abort against the restarted coordinator's empty
  // coordinator table.
  GuardianTimeoutConfig timeouts;
  timeouts.query_retry_interval = 2;
  SimWorld world(DistWorld(2, 52, timeouts));
  SeedVar(world, GuardianId{1}, "x", 0);
  const std::uint64_t presumed_before = obs::GetCounter("tpc.presumed_aborts")->Value();

  Result<ActionId> aid = StartSpread(world, {1}, "x");
  ASSERT_TRUE(aid.ok());
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid.value()).ok());
  world.Step();  // prepare → participant 1 prepares, ack queued
  ASSERT_EQ(world.guardian(1).FateOf(aid.value()), Guardian::ActionFate::kInProgress);

  // The coordinator dies before the ack arrives — no committing record.
  world.guardian(0).Crash();
  world.Pump();  // the ack lands on a corpse
  ASSERT_TRUE(world.guardian(0).Restart().ok());

  // Ticks drive the participant's re-query; the restarted coordinator has no
  // job for the action, so the reply is the presumed-abort verdict.
  world.PumpWithTime();
  EXPECT_EQ(world.guardian(1).FateOf(aid.value()), Guardian::ActionFate::kAborted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 0);
  EXPECT_GE(obs::GetCounter("tpc.presumed_aborts")->Value(), presumed_before + 1);

  // The released lock admits fresh work.
  Result<ActionId> next = StartSpread(world, {1}, "x");
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(world.guardian(0).RequestCommit(next.value()).ok());
  world.PumpWithTime();
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
}

TEST(PartialWorld, EdgeDelayStormIsResolvedByQueryRetry) {
  // A delay storm holds the coordinator's commit decision in flight; the
  // prepared participant's periodic query overtakes it and learns the
  // outcome through the kQueryReply path instead.
  GuardianTimeoutConfig timeouts;
  timeouts.query_retry_interval = 2;
  SimWorld world(DistWorld(2, 53, timeouts));
  SeedVar(world, GuardianId{1}, "x", 0);

  Result<ActionId> aid = StartSpread(world, {1}, "x");
  ASSERT_TRUE(aid.ok());
  // Everything 0→1 (prepare, commit) is held ~8 ticks; replies flow freely.
  world.network().SetEdgeDelay(GuardianId{0}, GuardianId{1}, 8, 8);
  ASSERT_TRUE(world.guardian(0).RequestCommit(aid.value()).ok());
  world.PumpWithTime(64);
  EXPECT_EQ(world.guardian(0).FateOf(aid.value()), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(world.guardian(1).FateOf(aid.value()), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), 1);
}

TEST(PartialWorld, SubsetCrashMidPrepareSurvivorsKeepCommitting) {
  // The serial skeleton of the headline property: an action spanning
  // {1, 2, 3} is cut down when {2, 3} die mid-prepare behind a partition;
  // the survivors {0, 1} keep committing disjoint actions through the
  // outage; the dead subset then recovers, rejoins, and resolves its
  // in-doubt state to the same verdict the survivors saw.
  GuardianTimeoutConfig timeouts;
  timeouts.prepare_timeout = 4;
  timeouts.query_retry_interval = 2;
  SimWorld world(DistWorld(4, 54, timeouts));
  for (std::uint32_t g = 1; g <= 3; ++g) {
    SeedVar(world, GuardianId{g}, "x", 0);
  }

  Result<ActionId> doomed = StartSpread(world, {1, 2, 3}, "x");
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(world.guardian(0).RequestCommit(doomed.value()).ok());
  world.Step();  // deliver ONE prepare (guardian 1 prepares; 2 and 3 have not)

  // The asymmetric crash: {2, 3} die and partition away mid-prepare.
  for (std::uint32_t v : {2u, 3u}) {
    world.guardian(v).Crash();
    world.network().Partition(GuardianId{v});
  }

  // Survivors keep committing: guardian-1-only actions run through the
  // outage. The doomed action's prepare timeout fires along the way,
  // releasing guardian 1's lock on "x".
  std::int64_t survivor_commits = 0;
  for (int i = 0; i < 4; ++i) {
    world.PumpWithTime();
    Result<ActionId> a = StartSpread(world, {1}, "x");
    if (!a.ok()) {
      continue;  // doomed action still holds the lock; timeout hasn't fired
    }
    ASSERT_TRUE(world.guardian(0).RequestCommit(a.value()).ok());
    world.PumpWithTime();
    if (world.guardian(0).FateOf(a.value()) == Guardian::ActionFate::kCommitted) {
      ++survivor_commits;
    }
  }
  EXPECT_GE(survivor_commits, 2) << "survivors must keep committing through the outage";
  EXPECT_EQ(world.guardian(0).FateOf(doomed.value()), Guardian::ActionFate::kAborted);
  EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), survivor_commits);

  // Recovery: heal, restart, and let query retries settle the dead subset.
  world.network().HealAll();
  for (std::uint32_t v : {2u, 3u}) {
    ASSERT_TRUE(world.guardian(v).Restart().ok());
  }
  world.PumpWithTime();
  // Cluster-wide fate convergence: nobody applied the doomed increment.
  EXPECT_EQ(ReadVar(world, GuardianId{2}, "x"), 0);
  EXPECT_EQ(ReadVar(world, GuardianId{3}, "x"), 0);
  EXPECT_EQ(world.guardian(1).FateOf(doomed.value()), Guardian::ActionFate::kAborted);

  // And the rejoined world commits a full-span action.
  Result<ActionId> whole = StartSpread(world, {1, 2, 3}, "x");
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(world.guardian(0).RequestCommit(whole.value()).ok());
  world.PumpWithTime();
  EXPECT_EQ(world.guardian(0).FateOf(whole.value()), Guardian::ActionFate::kCommitted);
  EXPECT_EQ(ReadVar(world, GuardianId{2}, "x"), 1);
  EXPECT_EQ(ReadVar(world, GuardianId{3}, "x"), 1);
}

TEST(PartialWorld, PartitionStormFateConvergence) {
  // Seeded partition storms over two-participant actions: drops, reordering,
  // and per-edge delay storms all at once, with timeouts resolving what the
  // storm cuts. The atomicity invariant is cross-guardian: both participants
  // of every action agree, so the two replicas of the counter stay EQUAL at
  // every quiescent point — and equal the number of committed actions.
  for (std::uint64_t seed = 60; seed < 68; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    GuardianTimeoutConfig timeouts;
    timeouts.prepare_timeout = 6;
    timeouts.query_retry_interval = 3;
    SimWorld world(DistWorld(3, seed, timeouts));
    SeedVar(world, GuardianId{1}, "x", 0);
    SeedVar(world, GuardianId{2}, "x", 0);

    world.network().set_drop_probability(0.15);
    world.network().set_reorder(true);
    world.network().SetEdgeDelay(GuardianId{0}, GuardianId{2}, 0, 4);

    std::int64_t committed = 0;
    for (int i = 0; i < 20; ++i) {
      Result<ActionId> aid = StartSpread(world, {1, 2}, "x");
      if (!aid.ok()) {
        world.PumpWithTime();  // locks still held by an unresolved action
        continue;
      }
      ASSERT_TRUE(world.guardian(0).RequestCommit(aid.value()).ok());
      world.PumpWithTime();
      if (world.guardian(0).FateOf(aid.value()) == Guardian::ActionFate::kCommitted) {
        ++committed;
      }
    }

    // Storm over: lossless network, remaining retries settle everything.
    world.network().set_drop_probability(0.0);
    world.network().set_reorder(false);
    world.network().ClearDelays();
    for (int i = 0; i < 8; ++i) {
      world.guardian(1).RequeryOutstanding();
      world.guardian(2).RequeryOutstanding();
      world.PumpWithTime();
    }

    EXPECT_GT(committed, 0);
    EXPECT_EQ(ReadVar(world, GuardianId{1}, "x"), committed);
    EXPECT_EQ(ReadVar(world, GuardianId{2}, "x"), committed);
    EXPECT_GT(world.network().stats().delayed, 0u);
  }
}

// ---------------------------------------------------------------------------
// Concurrent: the partial-crash storm
// ---------------------------------------------------------------------------

SimWorldConfig StormWorld(std::size_t guardians, std::uint64_t seed) {
  SimWorldConfig config;
  config.guardian_count = guardians;
  config.mode = LogMode::kHybrid;
  config.medium = MediumKind::kInMemory;
  config.seed = seed;
  config.group_commit = FlushCoordinatorConfig{};
  return config;
}

TEST(PartialCrashStorm, RequiresAtLeastTwoGuardians) {
  SimWorld world(StormWorld(1, 70));
  WorkloadConfig config;
  config.seed = 70;
  config.threads = 2;
  config.partial_crash_probability = 0.1;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  EXPECT_EQ(driver.Run(10).code(), ErrorCode::kInvalidArgument);
}

// The E13 sweep: 64 seeds where a worker's rng kills a random proper subset
// of guardians at the rendezvous, survivors serve traffic through the
// partition until the liveness floor is met, and a later roll recovers and
// reconciles the subset. Safety is the same durable-prefix oracle as E12
// (now with a full-replay obligation on survivors); liveness is the
// min_survivor_commits floor asserted by every recover event.
class PartialCrashSeedSweep : public testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PartialCrashSeedSweep,
                         testing::Range<std::uint64_t>(200, 264));

TEST_P(PartialCrashSeedSweep, SurvivorsStayLiveAndSubsetsReconcile) {
  ScopedFlightRecorderDumpOnFailure dump_guard;
  const std::uint64_t seed = GetParam();
  SimWorld world(StormWorld(3, seed));
  WorkloadConfig config;
  config.seed = seed;
  config.threads = 3;
  config.objects_per_guardian = 6;
  config.abort_probability = 0.1;
  config.partial_crash_probability = 0.08;
  config.partial_recover_probability = 0.2;
  config.partition_during_outage = true;
  config.min_survivor_commits = 3;

  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(120);
  ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.ToString();
  // At least one partial crash per seed: the roll count is seed-deterministic
  // and a roll can only be swallowed by an already-active outage — which
  // itself implies a partial crash happened.
  EXPECT_GE(driver.stats().partial_crashes, 1u) << "seed " << seed;
  EXPECT_GT(driver.stats().committed, 0u) << "seed " << seed;
  if (driver.stats().partial_recoveries > 0) {
    // Every recover event measured at least the floor — survivor liveness.
    EXPECT_GE(driver.stats().min_outage_survivor_commits, config.min_survivor_commits)
        << "seed " << seed;
  }
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << "seed " << seed << ": " << checked.status().ToString();
  // The world is whole again after the run.
  for (const auto& g : driver.SnapshotLiveStats()) {
    EXPECT_FALSE(g.crashed);
  }
}

TEST(PartialCrashStorm, MixedFullAndPartialCrashesCoexist) {
  // Full-world crashes landing mid-outage subsume the partial one (the
  // victims are already down; everyone restarts together). Sweep a few seeds
  // so both event kinds actually fire.
  std::uint64_t partials = 0, fulls = 0;
  for (std::uint64_t seed = 400; seed < 408; ++seed) {
    SimWorld world(StormWorld(3, seed));
    WorkloadConfig config;
    config.seed = seed;
    config.threads = 3;
    config.crash_probability = 0.04;
    config.partial_crash_probability = 0.06;
    config.partial_recover_probability = 0.25;
    config.partition_during_outage = true;
    config.min_survivor_commits = 2;
    WorkloadDriver driver(&world, config);
    ASSERT_TRUE(driver.Setup().ok());
    Status s = driver.Run(90);
    ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.ToString();
    partials += driver.stats().partial_crashes;
    fulls += driver.stats().crashes;
    Result<std::size_t> checked = driver.VerifyAfterCrash();
    ASSERT_TRUE(checked.ok()) << "seed " << seed << ": " << checked.status().ToString();
  }
  EXPECT_GE(partials, 1u);
  EXPECT_GE(fulls, 1u);
}

TEST(PartialCrashStorm, OutagesSurviveOnlineCheckpointsRacing) {
  // Checkpoint services keep running on the survivors through the outage;
  // the victims' services stand down at the crash and restart at recovery.
  SimWorld world(StormWorld(3, 500));
  WorkloadConfig config;
  config.seed = 500;
  config.threads = 3;
  config.partial_crash_probability = 0.06;
  config.partial_recover_probability = 0.25;
  config.min_survivor_commits = 2;
  CheckpointPolicyConfig checkpoint;
  checkpoint.log_growth_bytes = 4 * 1024;
  config.checkpoint = checkpoint;
  config.checkpoint_mode = CheckpointMode::kOnline;
  WorkloadDriver driver(&world, config);
  ASSERT_TRUE(driver.Setup().ok());
  Status s = driver.Run(120);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(driver.stats().partial_crashes, 1u);
  Result<std::size_t> checked = driver.VerifyAfterCrash();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
}

// ---------------------------------------------------------------------------
// The flight recorder at a partial crash
// ---------------------------------------------------------------------------

// All values of payload `key` ("a"/"b"/"c") for events named `name`.
std::set<std::string> EventPayloads(const std::string& dump, const std::string& name,
                                    const std::string& key) {
  std::set<std::string> out;
  const std::string needle = " " + name + " ";
  const std::string field = " " + key + "=";
  std::istringstream in(dump);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(needle) == std::string::npos) {
      continue;
    }
    std::size_t pos = line.find(field);
    if (pos == std::string::npos) {
      continue;
    }
    std::size_t start = pos + field.size();
    std::size_t end = line.find(' ', start);
    out.insert(line.substr(start, end - start));
  }
  return out;
}

TEST(PartialCrashFlightRecorder, DumpShowsInDoubtCommitOnDeadPeer) {
  // A worker cut down between staging a commit on a victim guardian and
  // confirming durability leaves a commit.stage (c = victim) with no
  // matching commit.durable anywhere in the dump — while the survivors'
  // staged commits all carry their durable confirmations. The dump names its
  // victims via the workload.partial_crash markers, so the check is
  // self-contained. Thread scheduling decides which run catches a worker in
  // the window, so sweep seeds until one does.
  bool found = false;
  std::uint64_t partials_seen = 0;
  for (std::uint64_t seed = 600; seed < 624 && !found; ++seed) {
    obs::ResetTraceForTest();
    SimWorld world(StormWorld(3, seed));
    WorkloadConfig config;
    config.seed = seed;
    config.threads = 3;
    config.partial_crash_probability = 0.12;
    config.partial_recover_probability = 0.3;
    config.min_survivor_commits = 1;
    WorkloadDriver driver(&world, config);
    ASSERT_TRUE(driver.Setup().ok());
    Status s = driver.Run(80);
    ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.ToString();
    if (driver.stats().partial_crashes == 0) {
      continue;
    }
    partials_seen += driver.stats().partial_crashes;
    const std::string& dump = driver.last_crash_dump();
    ASSERT_NE(dump.find("=== flight recorder"), std::string::npos) << "seed " << seed;
    std::set<std::string> victims = EventPayloads(dump, "workload.partial_crash", "a");
    ASSERT_FALSE(victims.empty()) << "seed " << seed;
    // Pair stages with durables by action sequence (payload a); for an
    // unpaired stage, payload c names the guardian it was staged on.
    std::set<std::string> durable_seqs = EventPayloads(dump, "commit.durable", "a");
    std::istringstream in(dump);
    std::string line;
    while (std::getline(in, line) && !found) {
      std::size_t pos = line.find(" commit.stage a=");
      if (pos == std::string::npos) {
        continue;
      }
      std::size_t start = pos + std::string(" commit.stage a=").size();
      std::string seq = line.substr(start, line.find(' ', start) - start);
      if (durable_seqs.contains(seq)) {
        continue;  // durability-confirmed before the crash
      }
      std::size_t cpos = line.find(" c=");
      ASSERT_NE(cpos, std::string::npos);
      std::string guardian = line.substr(cpos + 3);
      found = victims.contains(guardian);
    }
  }
  ASSERT_GE(partials_seen, 1u);
  EXPECT_TRUE(found) << "no in-doubt commit.stage on a dead peer in any dump";
}

}  // namespace
}  // namespace argus
