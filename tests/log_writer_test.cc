// Tests for the writing algorithm (§3.3.3.3): which entries reach the log in
// each accessibility/lock case, for both log organizations.

#include <gtest/gtest.h>

#include "src/recovery/log_writer.h"
#include "src/object/action_context.h"
#include "tests/test_support.h"

namespace argus {
namespace {

std::vector<LogEntry> AllEntries(const StableLog& log) {
  std::vector<LogEntry> out;
  StableLog::ForwardCursor cursor = log.ReadForwardFrom(0);
  while (true) {
    auto next = cursor.Next();
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok() || !next.value().has_value()) {
      break;
    }
    out.push_back(next.value()->second);
  }
  return out;
}

template <typename T>
std::size_t CountOf(const std::vector<LogEntry>& entries) {
  std::size_t n = 0;
  for (const LogEntry& e : entries) {
    if (std::holds_alternative<T>(e)) {
      ++n;
    }
  }
  return n;
}

struct WriterFixture {
  explicit WriterFixture(LogMode mode)
      : log(MakeMemLog()), writer(mode, log.get(), &heap) {}

  std::unique_ptr<StableLog> log;
  VolatileHeap heap;
  LogWriter writer;
};

TEST(LogWriterSimple, AccessibleModifiedObjectGetsDataEntry) {
  WriterFixture f(LogMode::kSimple);
  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  // Make an object stable (and accessible) under t0 first.
  ActionId t0 = Aid(99);
  ActionContext ctx0(t0);
  RecoverableObject* a = ctx0.CreateAtomic(f.heap, Value::Int(0));
  ASSERT_TRUE(ctx0.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["a"] = Value::Ref(a);
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t0, ctx0.TakeMos()).ok());
  ASSERT_TRUE(f.writer.Commit(t0).ok());
  ctx0.CommitVolatile(f.heap);

  // Now t1 modifies the accessible object.
  ASSERT_TRUE(ctx.WriteObject(a, Value::Int(7)).ok());
  ASSERT_TRUE(f.writer.Prepare(t1, ctx.TakeMos()).ok());

  std::vector<LogEntry> entries = AllEntries(*f.log);
  // t0: root data + bc(a) + prepared + committed; t1: data(a) + prepared.
  ASSERT_GE(entries.size(), 6u);
  const auto* data = std::get_if<DataEntry>(&entries[entries.size() - 2]);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->uid, a->uid());   // simple log: uid present
  EXPECT_EQ(data->aid, t1);         // simple log: aid present
  EXPECT_EQ(data->kind, ObjectKind::kAtomic);
}

TEST(LogWriterSimple, NewlyCreatedObjectGetsBaseCommitted) {
  WriterFixture f(LogMode::kSimple);
  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  RecoverableObject* a = ctx.CreateAtomic(f.heap, Value::Int(5));
  ASSERT_TRUE(ctx.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["a"] = Value::Ref(a);
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t1, ctx.TakeMos()).ok());

  std::vector<LogEntry> entries = AllEntries(*f.log);
  EXPECT_EQ(CountOf<BaseCommittedEntry>(entries), 1u);
  EXPECT_EQ(CountOf<DataEntry>(entries), 1u);  // just the root
  EXPECT_EQ(CountOf<PreparedEntry>(entries), 1u);
  // The creating action held only a read lock → single version, no data
  // entry for the new object (§3.3.3.3 step 4a).
  bool found = false;
  for (const LogEntry& e : entries) {
    if (const auto* bc = std::get_if<BaseCommittedEntry>(&e)) {
      EXPECT_EQ(bc->uid, a->uid());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LogWriterSimple, NewlyAccessibleWriteLockedGetsBaseAndCurrent) {
  WriterFixture f(LogMode::kSimple);
  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  // Create an object, link it, AND modify it in the same action: the writer
  // must emit bc(base) + data(current).
  RecoverableObject* a = ctx.CreateAtomic(f.heap, Value::Int(5));
  ASSERT_TRUE(ctx.WriteObject(a, Value::Int(6)).ok());  // upgrades to write lock
  ASSERT_TRUE(ctx.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["a"] = Value::Ref(a);
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t1, ctx.TakeMos()).ok());

  std::vector<LogEntry> entries = AllEntries(*f.log);
  EXPECT_EQ(CountOf<BaseCommittedEntry>(entries), 1u);
  EXPECT_EQ(CountOf<DataEntry>(entries), 2u);  // root + a's current version
}

TEST(LogWriterSimple, NewlyAccessibleLockedByPreparedActionGetsPreparedData) {
  WriterFixture f(LogMode::kSimple);
  // t0 creates object a (stable), commits. t1 write-locks a and PREPARES
  // while a is accessible... then t2 makes a SECOND object b accessible that
  // t1 had also locked but that was inaccessible at t1's prepare.
  ActionId t0 = Aid(10);
  ActionContext ctx0(t0);
  RecoverableObject* root_obj = ctx0.CreateAtomic(f.heap, Value::Nil());
  ASSERT_TRUE(ctx0.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["x"] = Value::Ref(root_obj);
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t0, ctx0.TakeMos()).ok());
  ASSERT_TRUE(f.writer.Commit(t0).ok());
  ctx0.CommitVolatile(f.heap);

  // b exists but is inaccessible; t1 modifies it and prepares (b not written:
  // it is not accessible).
  ActionId t1 = Aid(1);
  ActionContext ctx1(t1);
  RecoverableObject* b = ctx1.CreateAtomic(f.heap, Value::Int(1));
  ASSERT_TRUE(ctx1.WriteObject(b, Value::Int(2)).ok());
  ASSERT_TRUE(f.writer.Prepare(t1, ctx1.TakeMos()).ok());
  EXPECT_TRUE(f.writer.prepared_actions().contains(t1));

  std::size_t entries_before = AllEntries(*f.log).size();

  // t2 links b into the stable state: newly accessible, write-locked by the
  // PREPARED t1 → bc(base) + prepared_data(current, t1).
  ActionId t2 = Aid(2);
  ActionContext ctx2(t2);
  ASSERT_TRUE(ctx2.UpdateObject(root_obj, [&](Value& v) { v = Value::Ref(b); }).ok());
  ASSERT_TRUE(f.writer.Prepare(t2, ctx2.TakeMos()).ok());

  std::vector<LogEntry> entries = AllEntries(*f.log);
  ASSERT_GT(entries.size(), entries_before);
  EXPECT_EQ(CountOf<PreparedDataEntry>(entries), 1u);
  for (const LogEntry& e : entries) {
    if (const auto* pd = std::get_if<PreparedDataEntry>(&e)) {
      EXPECT_EQ(pd->uid, b->uid());
      EXPECT_EQ(pd->aid, t1);
    }
  }
}

TEST(LogWriterSimple, NewlyAccessibleLockedByUnpreparedActionGetsOnlyBase) {
  WriterFixture f(LogMode::kSimple);
  ActionId t0 = Aid(10);
  ActionContext ctx0(t0);
  RecoverableObject* slot = ctx0.CreateAtomic(f.heap, Value::Nil());
  ASSERT_TRUE(ctx0.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["slot"] = Value::Ref(slot);
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t0, ctx0.TakeMos()).ok());
  ASSERT_TRUE(f.writer.Commit(t0).ok());
  ctx0.CommitVolatile(f.heap);

  ActionId t1 = Aid(1);  // modifies b but does NOT prepare
  ActionContext ctx1(t1);
  RecoverableObject* b = ctx1.CreateAtomic(f.heap, Value::Int(1));
  ASSERT_TRUE(ctx1.WriteObject(b, Value::Int(2)).ok());

  ActionId t2 = Aid(2);
  ActionContext ctx2(t2);
  ASSERT_TRUE(ctx2.UpdateObject(slot, [&](Value& v) { v = Value::Ref(b); }).ok());
  ASSERT_TRUE(f.writer.Prepare(t2, ctx2.TakeMos()).ok());

  std::vector<LogEntry> entries = AllEntries(*f.log);
  EXPECT_EQ(CountOf<PreparedDataEntry>(entries), 0u);
  EXPECT_EQ(CountOf<BaseCommittedEntry>(entries), 2u);  // slot at t0, b at t2
}

TEST(LogWriterSimple, NewlyAccessibleMutexGetsDataEntry) {
  WriterFixture f(LogMode::kSimple);
  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  RecoverableObject* m = ctx.CreateMutex(f.heap, Value::Int(3));
  ASSERT_TRUE(ctx.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["m"] = Value::Ref(m);
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t1, ctx.TakeMos()).ok());

  bool found = false;
  for (const LogEntry& e : AllEntries(*f.log)) {
    if (const auto* data = std::get_if<DataEntry>(&e)) {
      if (data->kind == ObjectKind::kMutex) {
        EXPECT_EQ(data->uid, m->uid());
        EXPECT_EQ(data->aid, t1);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
  // MT tracks the latest prepared mutex version.
  EXPECT_TRUE(f.writer.mutex_table().contains(m->uid()));
}

TEST(LogWriterSimple, InaccessibleMosObjectsAreNotWritten) {
  WriterFixture f(LogMode::kSimple);
  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  RecoverableObject* orphan = ctx.CreateAtomic(f.heap, Value::Int(1));
  ASSERT_TRUE(ctx.WriteObject(orphan, Value::Int(2)).ok());
  // Never linked to the root: nothing but the prepared entry is logged.
  ASSERT_TRUE(f.writer.Prepare(t1, ctx.TakeMos()).ok());
  std::vector<LogEntry> entries = AllEntries(*f.log);
  EXPECT_EQ(CountOf<DataEntry>(entries), 0u);
  EXPECT_EQ(CountOf<BaseCommittedEntry>(entries), 0u);
  EXPECT_EQ(CountOf<PreparedEntry>(entries), 1u);
}

TEST(LogWriterHybrid, DataEntriesAreAnonymousAndPairedInPrepared) {
  WriterFixture f(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  RecoverableObject* a = ctx.CreateAtomic(f.heap, Value::Int(5));
  ASSERT_TRUE(ctx.WriteObject(a, Value::Int(6)).ok());
  ASSERT_TRUE(ctx.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["a"] = Value::Ref(a);
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t1, ctx.TakeMos()).ok());

  std::vector<LogEntry> entries = AllEntries(*f.log);
  for (const LogEntry& e : entries) {
    if (const auto* data = std::get_if<DataEntry>(&e)) {
      EXPECT_FALSE(data->uid.valid());  // hybrid data entries carry no uid
      EXPECT_FALSE(data->aid.valid());
    }
  }
  // The prepared entry lists <uid, address> pairs for root and a.
  const auto* prepared = std::get_if<PreparedEntry>(&entries.back());
  ASSERT_NE(prepared, nullptr);
  EXPECT_EQ(prepared->objects.size(), 2u);
  // Pairs dereference to data entries.
  for (const UidAddress& pair : prepared->objects) {
    Result<LogEntry> target = f.log->Read(pair.address);
    ASSERT_TRUE(target.ok());
    EXPECT_TRUE(std::holds_alternative<DataEntry>(target.value()));
  }
}

TEST(LogWriterHybrid, OutcomeEntriesFormBackwardChain) {
  WriterFixture f(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  RecoverableObject* a = ctx.CreateAtomic(f.heap, Value::Int(1));
  ASSERT_TRUE(ctx.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["a"] = Value::Ref(a);
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t1, ctx.TakeMos()).ok());
  ASSERT_TRUE(f.writer.Commit(t1).ok());

  // Walk the chain from the writer's head: committed → prepared → bc → null.
  LogAddress addr = f.writer.last_outcome_address();
  std::vector<std::string> kinds;
  while (!addr.is_null()) {
    Result<LogEntry> e = f.log->Read(addr);
    ASSERT_TRUE(e.ok());
    kinds.push_back(DescribeEntry(e.value()).substr(0, DescribeEntry(e.value()).find('{')));
    addr = PrevPointer(e.value());
  }
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], "committed");
  EXPECT_EQ(kinds[1], "prepared");
  EXPECT_EQ(kinds[2], "base_committed");
}

TEST(LogWriterHybrid, CoordinatorEntriesJoinChain) {
  WriterFixture f(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  ASSERT_TRUE(f.writer.Committing(t1, {GuardianId{1}, GuardianId{2}}).ok());
  ASSERT_TRUE(f.writer.Done(t1).ok());
  LogAddress addr = f.writer.last_outcome_address();
  Result<LogEntry> done = f.log->Read(addr);
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(std::holds_alternative<DoneEntry>(done.value()));
  Result<LogEntry> committing = f.log->Read(PrevPointer(done.value()));
  ASSERT_TRUE(committing.ok());
  const auto* c = std::get_if<CommittingEntry>(&committing.value());
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->participants.size(), 2u);
}

TEST(LogWriter, PreparedActionsTableLifecycle) {
  WriterFixture f(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  RecoverableObject* a = ctx.CreateAtomic(f.heap, Value::Int(1));
  ASSERT_TRUE(ctx.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["a"] = Value::Ref(a);
  }).ok());
  EXPECT_FALSE(f.writer.prepared_actions().contains(t1));
  ASSERT_TRUE(f.writer.Prepare(t1, ctx.TakeMos()).ok());
  EXPECT_TRUE(f.writer.prepared_actions().contains(t1));
  ASSERT_TRUE(f.writer.Commit(t1).ok());
  EXPECT_FALSE(f.writer.prepared_actions().contains(t1));
}

TEST(LogWriter, AbortWithoutPrepareWritesNothing) {
  WriterFixture f(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  ASSERT_TRUE(f.writer.Abort(t1).ok());
  EXPECT_TRUE(AllEntries(*f.log).empty());
}

TEST(LogWriter, AbortAfterPrepareWritesAbortedEntry) {
  WriterFixture f(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  RecoverableObject* a = ctx.CreateAtomic(f.heap, Value::Int(1));
  ASSERT_TRUE(ctx.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["a"] = Value::Ref(a);
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t1, ctx.TakeMos()).ok());
  ASSERT_TRUE(f.writer.Abort(t1).ok());
  EXPECT_EQ(CountOf<AbortedEntry>(AllEntries(*f.log)), 1u);
}

TEST(LogWriter, AccessibilitySetGrowsWithNewObjects) {
  WriterFixture f(LogMode::kHybrid);
  EXPECT_EQ(f.writer.accessibility_set().size(), 1u);  // the root
  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  RecoverableObject* a = ctx.CreateAtomic(f.heap, Value::Int(1));
  ASSERT_TRUE(ctx.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["a"] = Value::Ref(a);
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t1, ctx.TakeMos()).ok());
  EXPECT_TRUE(f.writer.accessibility_set().contains(a->uid()));
}

TEST(LogWriter, TrimAccessibilitySetDropsUnreachable) {
  WriterFixture f(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  RecoverableObject* a = ctx.CreateAtomic(f.heap, Value::Int(1));
  RecoverableObject* b = ctx.CreateAtomic(f.heap, Value::Int(2));
  ASSERT_TRUE(ctx.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["a"] = Value::Ref(a);
    r.as_record()["b"] = Value::Ref(b);
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t1, ctx.TakeMos()).ok());
  ASSERT_TRUE(f.writer.Commit(t1).ok());
  ctx.CommitVolatile(f.heap);
  ASSERT_EQ(f.writer.accessibility_set().size(), 3u);

  // Unlink b; its uid lingers in the AS until a trim.
  ActionId t2 = Aid(2);
  ActionContext ctx2(t2);
  ASSERT_TRUE(ctx2.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record().erase("b");
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t2, ctx2.TakeMos()).ok());
  ASSERT_TRUE(f.writer.Commit(t2).ok());
  ctx2.CommitVolatile(f.heap);
  EXPECT_TRUE(f.writer.accessibility_set().contains(b->uid()));

  f.writer.TrimAccessibilitySet();
  EXPECT_FALSE(f.writer.accessibility_set().contains(b->uid()));
  EXPECT_TRUE(f.writer.accessibility_set().contains(a->uid()));
}

TEST(LogWriter, SharedNewObjectWrittenOnce) {
  // Two accessible objects both point at the same new object: it must be
  // processed exactly once (the second NAOS hit sees it in the AS).
  WriterFixture f(LogMode::kHybrid);
  ActionId t1 = Aid(1);
  ActionContext ctx(t1);
  RecoverableObject* shared = ctx.CreateAtomic(f.heap, Value::Int(9));
  ASSERT_TRUE(ctx.UpdateObject(f.heap.root(), [&](Value& r) {
    r.as_record()["x"] = Value::Ref(shared);
    r.as_record()["y"] = Value::Ref(shared);
  }).ok());
  ASSERT_TRUE(f.writer.Prepare(t1, ctx.TakeMos()).ok());
  EXPECT_EQ(CountOf<BaseCommittedEntry>(AllEntries(*f.log)), 1u);
}

}  // namespace
}  // namespace argus
