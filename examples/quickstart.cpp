// Quickstart: one guardian's reliable object storage in ~60 lines.
//
//  1. Create a guardian storage stack (heap + recovery system over a log).
//  2. Run an action that creates an atomic object and binds it to a stable
//     variable; push it through prepare/commit.
//  3. Crash (throw away all volatile state).
//  4. Recover from the log and read the object back.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/object/action_context.h"
#include "src/recovery/recovery_system.h"

using namespace argus;

int main() {
  RecoverySystemConfig config;
  config.mode = LogMode::kHybrid;
  config.medium_factory = [] { return std::make_unique<InMemoryStableMedium>(); };

  // -- A fresh guardian --------------------------------------------------
  auto heap = std::make_unique<VolatileHeap>();
  auto rs = std::make_unique<RecoverySystem>(config, heap.get());

  // -- One committed action ----------------------------------------------
  ActionId t1{GuardianId{0}, 1};
  ActionContext ctx(t1);
  RecoverableObject* greeting = ctx.CreateAtomic(
      *heap, Value::OfRecord({{"text", Value::Str("hello, stable storage")},
                              {"revision", Value::Int(1)}}));
  Status s = ctx.UpdateObject(heap->root(), [&](Value& root) {
    root.as_record()["greeting"] = Value::Ref(greeting);
  });
  ARGUS_CHECK(s.ok());

  s = rs->Prepare(t1, ctx.TakeMos());  // data entries + prepared record forced
  ARGUS_CHECK(s.ok());
  s = rs->Commit(t1);                  // committed record forced
  ARGUS_CHECK(s.ok());
  ctx.CommitVolatile(*heap);

  std::printf("committed: %s\n", greeting->base_version().ToString().c_str());
  std::printf("log: %llu bytes, %llu forces\n",
              static_cast<unsigned long long>(rs->log().durable_size()),
              static_cast<unsigned long long>(rs->log().stats().forces));

  // -- Crash ---------------------------------------------------------------
  std::unique_ptr<StableLog> surviving_log = rs->TakeLog();
  rs.reset();
  heap.reset();  // every volatile object is gone
  std::printf("crash!\n");

  // -- Recover ---------------------------------------------------------------
  heap = std::make_unique<VolatileHeap>();
  rs = std::make_unique<RecoverySystem>(config, heap.get(), std::move(surviving_log));
  Result<RecoveryInfo> info = rs->Recover();
  ARGUS_CHECK(info.ok());
  std::printf("recovered %zu objects, examined %llu log entries\n",
              info.value().ot.size(),
              static_cast<unsigned long long>(info.value().entries_examined));

  const Value& root = heap->root()->base_version();
  RecoverableObject* restored = root.as_record().at("greeting").as_ref();
  std::printf("restored:  %s\n", restored->base_version().ToString().c_str());
  return 0;
}
