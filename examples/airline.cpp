// Airline reservations: atomic seat objects, a mutex audit ledger, early
// prepare, and periodic housekeeping.
//
// One reservations guardian holds a seat map (atomic objects — bookings roll
// back if the action aborts) and an append-style audit ledger (a MUTEX object:
// once an action has prepared, its ledger writes survive even an abort,
// §2.4.2 — exactly what an audit trail wants). Bookings use early prepare to
// shorten the prepare phase. Every 25 actions the guardian takes a snapshot
// checkpoint. At the end we crash and recover.
//
// Build & run:  ./build/examples/airline

#include <cstdio>

#include "src/common/rng.h"
#include "src/tpc/sim_world.h"

using namespace argus;

namespace {

constexpr int kRows = 10;
constexpr int kSeatsPerRow = 4;

std::string SeatName(int row, int seat) {
  return "seat_" + std::to_string(row) + "_" + std::string(1, static_cast<char>('A' + seat));
}

void SetUpFlight(SimWorld& world) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, GuardianId{0}, [&](Guardian& g, ActionContext& ctx) -> Status {
          for (int row = 0; row < kRows; ++row) {
            for (int seat = 0; seat < kSeatsPerRow; ++seat) {
              RecoverableObject* obj = ctx.CreateAtomic(
                  g.heap(), Value::OfRecord({{"passenger", Value::Nil()}}));
              Status s = g.SetStableVariable(aid, SeatName(row, seat), obj);
              if (!s.ok()) {
                return s;
              }
            }
          }
          RecoverableObject* ledger = ctx.CreateMutex(g.heap(), Value::OfList({}));
          return g.SetStableVariable(aid, "audit_ledger", ledger);
        });
      });
  ARGUS_CHECK(fate.ok() && fate.value() == Guardian::ActionFate::kCommitted);
}

// Books a seat for `passenger`; also writes an audit record. Returns the fate.
Guardian::ActionFate Book(SimWorld& world, int row, int seat, const std::string& passenger,
                          bool use_early_prepare) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        Status s = w.RunAt(aid, GuardianId{0}, [&](Guardian& g, ActionContext& ctx) -> Status {
          Result<RecoverableObject*> obj = g.GetStableVariable(aid, SeatName(row, seat));
          if (!obj.ok()) {
            return obj.status();
          }
          Result<Value> current = ctx.ReadObject(obj.value());
          if (!current.ok()) {
            return current.status();
          }
          if (!current.value().as_record().at("passenger").is_nil()) {
            return Status::Unavailable("seat already taken");
          }
          Status w_s = ctx.UpdateObject(obj.value(), [&](Value& v) {
            v.as_record()["passenger"] = Value::Str(passenger);
          });
          if (!w_s.ok()) {
            return w_s;
          }
          Result<RecoverableObject*> ledger = g.GetStableVariable(aid, "audit_ledger");
          if (!ledger.ok()) {
            return ledger.status();
          }
          w_s = ctx.MutateMutex(ledger.value(), [&](Value& v) {
            v.as_list().push_back(Value::Str(passenger + " -> " + SeatName(row, seat)));
          });
          if (!w_s.ok()) {
            return w_s;
          }
          if (use_early_prepare) {
            // The guardian has "free time" before the prepare arrives.
            return g.EarlyPrepare(aid);
          }
          return Status::Ok();
        });
        return s;
      });
  ARGUS_CHECK(fate.ok());
  return fate.value();
}

int BookedSeats(SimWorld& world) {
  int booked = 0;
  for (int row = 0; row < kRows; ++row) {
    for (int seat = 0; seat < kSeatsPerRow; ++seat) {
      RecoverableObject* obj =
          world.guardian(0).CommittedStableVariable(SeatName(row, seat));
      if (obj != nullptr && !obj->base_version().as_record().at("passenger").is_nil()) {
        ++booked;
      }
    }
  }
  return booked;
}

std::size_t LedgerLength(SimWorld& world) {
  RecoverableObject* ledger = world.guardian(0).CommittedStableVariable("audit_ledger");
  ARGUS_CHECK(ledger != nullptr);
  return ledger->mutex_value().as_list().size();
}

}  // namespace

int main() {
  SimWorldConfig config;
  config.guardian_count = 1;
  config.mode = LogMode::kHybrid;
  config.seed = 99;
  SimWorld world(config);
  Rng rng(99);

  SetUpFlight(world);
  std::printf("flight configured: %d seats\n", kRows * kSeatsPerRow);

  int committed = 0;
  int refused = 0;
  for (int i = 0; i < 60; ++i) {
    int row = static_cast<int>(rng.NextBelow(kRows));
    int seat = static_cast<int>(rng.NextBelow(kSeatsPerRow));
    Guardian::ActionFate fate =
        Book(world, row, seat, "pax" + std::to_string(i), /*use_early_prepare=*/i % 2 == 0);
    if (fate == Guardian::ActionFate::kCommitted) {
      ++committed;
    } else {
      ++refused;  // double-booking attempts abort
    }
    if ((i + 1) % 25 == 0) {
      Status s = world.guardian(0).Housekeep(HousekeepingMethod::kSnapshot);
      ARGUS_CHECK(s.ok());
      std::printf("  snapshot checkpoint: log now %llu bytes\n",
                  static_cast<unsigned long long>(
                      world.guardian(0).recovery().log().durable_size()));
    }
  }
  std::printf("%d bookings committed, %d refused (seat conflicts)\n", committed, refused);
  std::printf("seats booked: %d, ledger entries: %zu\n", BookedSeats(world),
              LedgerLength(world));

  int booked_before = BookedSeats(world);
  std::size_t ledger_before = LedgerLength(world);

  world.guardian(0).Crash();
  Result<RecoveryInfo> info = world.guardian(0).Restart();
  ARGUS_CHECK(info.ok());
  std::printf("crash + recovery: examined %llu entries, dereferenced %llu data entries\n",
              static_cast<unsigned long long>(info.value().entries_examined),
              static_cast<unsigned long long>(info.value().data_entries_read));

  bool intact = BookedSeats(world) == booked_before && LedgerLength(world) == ledger_before;
  std::printf("after recovery: %d seats booked, %zu ledger entries -> %s\n",
              BookedSeats(world), LedgerLength(world),
              intact ? "STATE INTACT" : "STATE LOST — BUG");
  return intact ? 0 : 1;
}
