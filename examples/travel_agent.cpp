// Travel agent: nested subactions inside one atomic booking.
//
// A trip books a flight seat AND a hotel room atomically. Each attempt to
// book a specific hotel runs as a SUBACTION: if the hotel is full, only the
// subaction aborts (its tentative writes unwind) and the agent tries the next
// hotel — the flight reservation made earlier in the same top action is
// untouched. The whole trip then commits (or aborts) as one atomic action,
// and a crash proves the committed trips are durable.
//
// Build & run:  ./build/examples/travel_agent

#include <cstdio>

#include "src/object/subaction.h"
#include "src/tpc/sim_world.h"

using namespace argus;

namespace {

constexpr int kFlightSeats = 6;
constexpr int kRoomsPerHotel = 2;
const char* kHotels[] = {"grand", "plaza", "budget"};

void SetUp(SimWorld& world) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, GuardianId{0}, [&](Guardian& g, ActionContext& ctx) -> Status {
          RecoverableObject* flight = ctx.CreateAtomic(
              g.heap(), Value::OfRecord({{"free", Value::Int(kFlightSeats)},
                                         {"passengers", Value::OfList({})}}));
          Status s = g.SetStableVariable(aid, "flight", flight);
          if (!s.ok()) {
            return s;
          }
          for (const char* hotel : kHotels) {
            RecoverableObject* obj = ctx.CreateAtomic(
                g.heap(), Value::OfRecord({{"free", Value::Int(kRoomsPerHotel)},
                                           {"guests", Value::OfList({})}}));
            s = g.SetStableVariable(aid, std::string("hotel_") + hotel, obj);
            if (!s.ok()) {
              return s;
            }
          }
          return Status::Ok();
        });
      });
  ARGUS_CHECK(fate.ok() && fate.value() == Guardian::ActionFate::kCommitted);
}

// Tries to take one unit of capacity; fails if full.
Status TakeCapacity(SubactionScope& sub, RecoverableObject* obj, const std::string& name) {
  Result<Value> current = sub.ReadObject(obj);
  if (!current.ok()) {
    return current.status();
  }
  if (current.value().as_record().at("free").as_int() <= 0) {
    return Status::Unavailable("full");
  }
  const char* roster =
      current.value().as_record().contains("passengers") ? "passengers" : "guests";
  return sub.UpdateObject(obj, [&](Value& v) {
    Value& free = v.as_record()["free"];
    free = Value::Int(free.as_int() - 1);
    v.as_record()[roster].as_list().push_back(Value::Str(name));
  });
}

// One customer's trip: flight + first hotel with space, all-or-nothing.
Guardian::ActionFate BookTrip(SimWorld& world, const std::string& customer,
                              std::string* hotel_used) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, GuardianId{0}, [&](Guardian& g, ActionContext& ctx) -> Status {
          // Step 1: flight seat, inside a subaction so a later total failure
          // leaves clean state (the top-level abort would too; the subaction
          // keeps the example honest about scoping).
          SubactionScope trip(&ctx, &g.heap());
          Result<RecoverableObject*> flight = g.GetStableVariable(aid, "flight");
          if (!flight.ok()) {
            return flight.status();
          }
          Status s = TakeCapacity(trip, flight.value(), customer);
          if (!s.ok()) {
            trip.Abort();
            return s;  // no flight seat: the whole trip aborts
          }
          // Step 2: try hotels, each attempt in its own nested subaction.
          for (const char* hotel : kHotels) {
            Result<RecoverableObject*> rooms =
                g.GetStableVariable(aid, std::string("hotel_") + hotel);
            if (!rooms.ok()) {
              return rooms.status();
            }
            SubactionScope attempt(&ctx, &g.heap(), &trip);
            s = TakeCapacity(attempt, rooms.value(), customer);
            if (s.ok()) {
              attempt.Commit();
              trip.Commit();
              *hotel_used = hotel;
              return Status::Ok();
            }
            attempt.Abort();  // this hotel is full; tentative writes unwind
          }
          trip.Abort();  // no hotel anywhere: flight seat released too
          return Status::Unavailable("no hotel available");
        });
      });
  ARGUS_CHECK(fate.ok());
  return fate.value();
}

std::int64_t FreeOf(SimWorld& world, const std::string& var) {
  RecoverableObject* obj = world.guardian(0).CommittedStableVariable(var);
  ARGUS_CHECK(obj != nullptr);
  return obj->base_version().as_record().at("free").as_int();
}

}  // namespace

int main() {
  SimWorldConfig config;
  config.guardian_count = 1;
  config.mode = LogMode::kHybrid;
  config.seed = 7;
  SimWorld world(config);
  SetUp(world);
  std::printf("inventory: %d flight seats, %d hotels x %d rooms\n", kFlightSeats, 3,
              kRoomsPerHotel);

  int booked = 0;
  int refused = 0;
  for (int i = 0; i < 9; ++i) {
    std::string hotel;
    Guardian::ActionFate fate = BookTrip(world, "traveler" + std::to_string(i), &hotel);
    if (fate == Guardian::ActionFate::kCommitted) {
      ++booked;
      std::printf("  traveler%d: flight + hotel '%s'\n", i, hotel.c_str());
    } else {
      ++refused;
      std::printf("  traveler%d: refused (sold out) — nothing was charged\n", i);
    }
  }

  std::printf("booked %d trips, refused %d\n", booked, refused);
  std::printf("remaining: flight %lld, grand %lld, plaza %lld, budget %lld\n",
              static_cast<long long>(FreeOf(world, "flight")),
              static_cast<long long>(FreeOf(world, "hotel_grand")),
              static_cast<long long>(FreeOf(world, "hotel_plaza")),
              static_cast<long long>(FreeOf(world, "hotel_budget")));

  // Durability proof.
  world.guardian(0).Crash();
  ARGUS_CHECK(world.guardian(0).Restart().ok());
  world.Pump();
  bool consistent = FreeOf(world, "flight") == kFlightSeats - booked &&
                    (FreeOf(world, "hotel_grand") + FreeOf(world, "hotel_plaza") +
                     FreeOf(world, "hotel_budget")) == 3 * kRoomsPerHotel - booked;
  std::printf("after crash+recovery: %s\n",
              consistent ? "BOOKINGS CONSISTENT" : "INCONSISTENT — BUG");
  return consistent ? 0 : 1;
}
