// Banking: distributed transfers with two-phase commit and crash injection.
//
// Three guardians: a coordinator front-end (G0) and two branch guardians
// (G1, G2) each holding accounts as stable atomic objects. Transfers move
// money between branches atomically; we crash branches at awkward protocol
// moments and verify that no money is ever created or destroyed.
//
// Build & run:  ./build/examples/banking

#include <cstdio>

#include "src/tpc/sim_world.h"

using namespace argus;

namespace {

constexpr int kAccountsPerBranch = 4;
constexpr std::int64_t kInitialBalance = 1000;

std::string AccountName(int i) { return "acct" + std::to_string(i); }

// Creates the accounts at one branch in a single committed action.
void OpenBranch(SimWorld& world, GuardianId branch) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(branch, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, branch, [&](Guardian& g, ActionContext& ctx) -> Status {
          for (int i = 0; i < kAccountsPerBranch; ++i) {
            RecoverableObject* acct = ctx.CreateAtomic(
                g.heap(), Value::OfRecord({{"balance", Value::Int(kInitialBalance)},
                                           {"owner", Value::Str("customer-" +
                                                                std::to_string(i))}}));
            Status s = g.SetStableVariable(aid, AccountName(i), acct);
            if (!s.ok()) {
              return s;
            }
          }
          return Status::Ok();
        });
      });
  ARGUS_CHECK(fate.ok() && fate.value() == Guardian::ActionFate::kCommitted);
}

Status Adjust(Guardian& g, ActionId aid, ActionContext& ctx, const std::string& account,
              std::int64_t delta) {
  Result<RecoverableObject*> acct = g.GetStableVariable(aid, account);
  if (!acct.ok()) {
    return acct.status();
  }
  return ctx.UpdateObject(acct.value(), [delta](Value& v) {
    Value& balance = v.as_record()["balance"];
    balance = Value::Int(balance.as_int() + delta);
  });
}

// A transfer between accounts at two branches, coordinated by G0.
Guardian::ActionFate Transfer(SimWorld& world, GuardianId from, int from_acct, GuardianId to,
                              int to_acct, std::int64_t amount) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
        Status s = w.RunAt(aid, from, [&](Guardian& g, ActionContext& ctx) {
          return Adjust(g, aid, ctx, AccountName(from_acct), -amount);
        });
        if (!s.ok()) {
          return s;
        }
        return w.RunAt(aid, to, [&](Guardian& g, ActionContext& ctx) {
          return Adjust(g, aid, ctx, AccountName(to_acct), amount);
        });
      });
  ARGUS_CHECK(fate.ok());
  return fate.value();
}

std::int64_t BranchTotal(SimWorld& world, GuardianId branch) {
  std::int64_t total = 0;
  for (int i = 0; i < kAccountsPerBranch; ++i) {
    RecoverableObject* acct = world.guardian(branch).CommittedStableVariable(AccountName(i));
    ARGUS_CHECK(acct != nullptr);
    total += acct->base_version().as_record().at("balance").as_int();
  }
  return total;
}

std::int64_t WorldTotal(SimWorld& world) {
  return BranchTotal(world, GuardianId{1}) + BranchTotal(world, GuardianId{2});
}

}  // namespace

int main() {
  SimWorldConfig config;
  config.guardian_count = 3;
  config.mode = LogMode::kHybrid;
  config.seed = 2026;
  SimWorld world(config);

  OpenBranch(world, GuardianId{1});
  OpenBranch(world, GuardianId{2});
  const std::int64_t expected_total = 2 * kAccountsPerBranch * kInitialBalance;
  std::printf("opened 2 branches, total balance %lld\n",
              static_cast<long long>(WorldTotal(world)));

  // Routine transfers.
  int committed = 0;
  for (int i = 0; i < 20; ++i) {
    Guardian::ActionFate fate = Transfer(world, GuardianId{1}, i % kAccountsPerBranch,
                                         GuardianId{2}, (i + 1) % kAccountsPerBranch, 25);
    if (fate == Guardian::ActionFate::kCommitted) {
      ++committed;
    }
  }
  std::printf("20 transfers attempted, %d committed, total %lld (expect %lld)\n", committed,
              static_cast<long long>(WorldTotal(world)),
              static_cast<long long>(expected_total));

  // A branch crashes mid-protocol: start a transfer, deliver only the first
  // prepare, crash the destination branch, let the coordinator abort.
  Guardian& g0 = world.guardian(0);
  ActionId aid = g0.BeginTopAction();
  Status s = world.RunAt(aid, GuardianId{1}, [&](Guardian& g, ActionContext& ctx) {
    return Adjust(g, aid, ctx, AccountName(0), -500);
  });
  ARGUS_CHECK(s.ok());
  s = world.RunAt(aid, GuardianId{2}, [&](Guardian& g, ActionContext& ctx) {
    return Adjust(g, aid, ctx, AccountName(0), 500);
  });
  ARGUS_CHECK(s.ok());
  ARGUS_CHECK(g0.RequestCommit(aid).ok());
  world.Step();  // only G1's prepare gets through
  world.guardian(2).Crash();
  std::printf("branch G2 crashed mid-transfer\n");
  world.Pump();
  g0.AbortTopAction(aid);  // coordinator times out and aborts
  world.Pump();

  Result<RecoveryInfo> info = world.guardian(2).Restart();
  ARGUS_CHECK(info.ok());
  world.guardian(1).RequeryOutstanding();
  world.Pump();
  std::printf("branch G2 recovered (%llu log entries examined); transfer aborted\n",
              static_cast<unsigned long long>(info.value().entries_examined));
  std::printf("total after crash/abort: %lld (expect %lld)\n",
              static_cast<long long>(WorldTotal(world)),
              static_cast<long long>(expected_total));

  // Crash a branch after commit: the committed transfer must survive.
  Guardian::ActionFate fate =
      Transfer(world, GuardianId{1}, 1, GuardianId{2}, 1, 100);
  ARGUS_CHECK(fate == Guardian::ActionFate::kCommitted);
  world.guardian(1).Crash();
  world.guardian(2).Crash();
  ARGUS_CHECK(world.guardian(1).Restart().ok());
  ARGUS_CHECK(world.guardian(2).Restart().ok());
  world.Pump();
  std::printf("both branches crashed and recovered; total %lld (expect %lld)\n",
              static_cast<long long>(WorldTotal(world)),
              static_cast<long long>(expected_total));

  bool conserved = WorldTotal(world) == expected_total;
  std::printf("%s\n", conserved ? "MONEY CONSERVED" : "MONEY LOST OR CREATED — BUG");
  return conserved ? 0 : 1;
}
