// Log inspector: renders every entry of a stable log, plus the backward
// outcome chain a hybrid recovery would walk.
//
// With a path argument it opens a file-backed log; with no argument it builds
// a small in-memory demo history (including an abort and an early prepare)
// and dumps that.
//
// Build & run:  ./build/examples/log_inspector [path/to/logfile]

#include <cstdio>

#include "src/object/action_context.h"
#include "src/recovery/recovery_system.h"
#include "src/stable/file_medium.h"

using namespace argus;

namespace {

void DumpForward(const StableLog& log) {
  std::printf("-- physical order (oldest first) --\n");
  StableLog::ForwardCursor cursor = log.ReadForwardFrom(0);
  while (true) {
    auto next = cursor.Next();
    if (!next.ok()) {
      std::printf("  !! %s\n", next.status().ToString().c_str());
      return;
    }
    if (!next.value().has_value()) {
      break;
    }
    const auto& [addr, entry] = *next.value();
    std::printf("  %8llu  %s\n", static_cast<unsigned long long>(addr.offset),
                DescribeEntry(entry).c_str());
  }
}

void DumpChain(const StableLog& log) {
  std::printf("-- backward outcome chain (what hybrid recovery walks) --\n");
  // Find the chain head: last outcome entry.
  StableLog::BackwardCursor scan = log.ReadBackwardFromTop();
  LogAddress head = LogAddress::Null();
  while (true) {
    auto next = scan.Next();
    if (!next.ok() || !next.value().has_value()) {
      break;
    }
    if (IsOutcomeEntry(next.value()->second)) {
      head = next.value()->first;
      break;
    }
  }
  LogAddress addr = head;
  while (!addr.is_null()) {
    Result<LogEntry> entry = log.Read(addr);
    if (!entry.ok()) {
      std::printf("  !! %s\n", entry.status().ToString().c_str());
      return;
    }
    std::printf("  %8llu  %s\n", static_cast<unsigned long long>(addr.offset),
                DescribeEntry(entry.value()).c_str());
    addr = PrevPointer(entry.value());
  }
}

std::unique_ptr<StableLog> BuildDemoLog() {
  RecoverySystemConfig config;
  config.mode = LogMode::kHybrid;
  config.medium_factory = [] { return std::make_unique<InMemoryStableMedium>(); };
  auto heap = std::make_unique<VolatileHeap>();
  auto rs = std::make_unique<RecoverySystem>(config, heap.get());

  // A committed action creating two objects.
  ActionId t1{GuardianId{0}, 1};
  {
    ActionContext ctx(t1);
    RecoverableObject* a = ctx.CreateAtomic(*heap, Value::Int(100));
    RecoverableObject* m = ctx.CreateMutex(*heap, Value::Str("ledger"));
    ARGUS_CHECK(ctx.UpdateObject(heap->root(), [&](Value& r) {
      r.as_record()["a"] = Value::Ref(a);
      r.as_record()["m"] = Value::Ref(m);
    }).ok());
    ARGUS_CHECK(rs->Prepare(t1, ctx.TakeMos()).ok());
    ARGUS_CHECK(rs->Commit(t1).ok());
    ctx.CommitVolatile(*heap);
  }
  // A prepared-then-aborted action.
  ActionId t2{GuardianId{0}, 2};
  {
    ActionContext ctx(t2);
    RecoverableObject* a =
        heap->root()->base_version().as_record().at("a").as_ref();
    ARGUS_CHECK(ctx.WriteObject(a, Value::Int(200)).ok());
    ARGUS_CHECK(rs->Prepare(t2, ctx.TakeMos()).ok());
    ARGUS_CHECK(rs->Abort(t2).ok());
    ctx.AbortVolatile(*heap);
  }
  // An early-prepared, committed action, plus coordinator records.
  ActionId t3{GuardianId{0}, 3};
  {
    ActionContext ctx(t3);
    RecoverableObject* a =
        heap->root()->base_version().as_record().at("a").as_ref();
    ARGUS_CHECK(ctx.WriteObject(a, Value::Int(300)).ok());
    Result<ModifiedObjectsSet> leftover = rs->WriteEntry(t3, ctx.TakeMos());
    ARGUS_CHECK(leftover.ok());
    ARGUS_CHECK(rs->Prepare(t3, {}).ok());
    ARGUS_CHECK(rs->Committing(t3, {GuardianId{0}}).ok());
    ARGUS_CHECK(rs->Commit(t3).ok());
    ARGUS_CHECK(rs->Done(t3).ok());
    ctx.CommitVolatile(*heap);
  }
  return rs->TakeLog();
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<StableLog> log;
  if (argc > 1) {
    Result<std::unique_ptr<FileStableMedium>> medium = FileStableMedium::Open(argv[1]);
    if (!medium.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", argv[1],
                   medium.status().ToString().c_str());
      return 1;
    }
    log = std::make_unique<StableLog>(std::move(medium).value());
  } else {
    std::printf("(no log file given; dumping a built-in demo history)\n");
    log = BuildDemoLog();
  }

  std::printf("log: %llu durable bytes\n",
              static_cast<unsigned long long>(log->durable_size()));
  DumpForward(*log);
  DumpChain(*log);
  return 0;
}
