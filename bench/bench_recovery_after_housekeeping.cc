// Experiment E4 — recovery before vs after a checkpoint (ch. 5 intro).
//
// Claim: housekeeping bounds the log a recovery must look at. For the same
// history length we recover (a) the raw log and (b) the checkpointed log, and
// report entries examined + time.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"
#include "src/recovery/recovery_algorithms.h"

namespace argus {
namespace {

constexpr std::size_t kLiveObjects = 32;
constexpr std::size_t kValueSize = 64;

std::unique_ptr<StableLog> BuildLog(std::size_t history, bool housekeep,
                                    HousekeepingMethod method) {
  BenchGuardian guardian(LogMode::kHybrid, kLiveObjects, kValueSize);
  Rng rng(13);
  for (std::size_t i = 0; i < history; ++i) {
    guardian.CommitAction(rng, 4);
  }
  if (housekeep) {
    Status s = guardian.rs().Housekeep(method);
    ARGUS_CHECK(s.ok());
  }
  std::unique_ptr<StableLog> log = guardian.CrashAndTakeLog();
  Result<std::uint64_t> r = log->RecoverAfterCrash();
  ARGUS_CHECK(r.ok());
  return log;
}

void RunRecovery(benchmark::State& state, bool housekeep, HousekeepingMethod method) {
  std::unique_ptr<StableLog> log =
      BuildLog(static_cast<std::size_t>(state.range(0)), housekeep, method);
  std::uint64_t entries = 0;
  for (auto _ : state) {
    VolatileHeap heap;
    Result<RecoveryResult> r = RecoverHybridLog(*log, heap);
    ARGUS_CHECK(r.ok());
    entries = r.value().entries_examined;
    benchmark::DoNotOptimize(r.value().ot.size());
  }
  state.counters["entries_examined"] = benchmark::Counter(static_cast<double>(entries));
  state.counters["log_bytes"] = benchmark::Counter(static_cast<double>(log->durable_size()));
}

void BM_RecoveryRawLog(benchmark::State& state) {
  RunRecovery(state, false, HousekeepingMethod::kCompaction);
}
void BM_RecoveryAfterCompaction(benchmark::State& state) {
  RunRecovery(state, true, HousekeepingMethod::kCompaction);
}
void BM_RecoveryAfterSnapshot(benchmark::State& state) {
  RunRecovery(state, true, HousekeepingMethod::kSnapshot);
}

BENCHMARK(BM_RecoveryRawLog)->Arg(512)->Arg(2048)->Arg(8192)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RecoveryAfterCompaction)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RecoveryAfterSnapshot)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_recovery_after_housekeeping)
