// Experiment E5 — early prepare (§4.4).
//
// Claim: writing data entries "in anticipation of the prepare … makes
// preparing potentially faster"; on abort "extra work has been done, but that
// is not a problem because we assume that aborts are not as frequent as
// commits." We measure (a) the latency of the prepare step itself with and
// without early prepare, and (b) total bytes written per action as the abort
// probability grows (the wasted-write cost).

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

namespace argus {
namespace {

constexpr std::size_t kObjects = 256;
constexpr std::size_t kValueSize = 256;
constexpr std::size_t kWrites = 16;

// Measures just the Prepare call (the participant's response time to the
// prepare message — the latency two-phase commit waits on).
void RunPrepareLatency(benchmark::State& state, bool early) {
  BenchGuardian guardian(LogMode::kHybrid, kObjects, kValueSize);
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    ActionId aid = guardian.NewAction();
    ActionContext ctx(aid);
    for (std::size_t i = 0; i < kWrites; ++i) {
      RecoverableObject* obj = guardian.heap().Get(
          guardian.heap().root()->base_version().as_record()
              .at("obj" + std::to_string(rng.NextU64() % kObjects))
              .as_ref()->uid());
      Status s = ctx.WriteObject(obj, guardian.MakeValue(1));
      (void)s;
    }
    if (early) {
      // The guardian had free time before the prepare message arrived.
      Result<ModifiedObjectsSet> leftover = guardian.rs().WriteEntry(aid, ctx.TakeMos());
      ARGUS_CHECK(leftover.ok());
      ctx.AddToMos(leftover.value());
      ARGUS_CHECK(guardian.rs().log().Force().ok());
    }
    state.ResumeTiming();

    Status s = guardian.rs().Prepare(aid, ctx.TakeMos());
    ARGUS_CHECK(s.ok());

    state.PauseTiming();
    s = guardian.rs().Commit(aid);
    ARGUS_CHECK(s.ok());
    ctx.CommitVolatile(guardian.heap());
    state.ResumeTiming();
  }
}

void BM_PrepareLatencyNoEarlyPrepare(benchmark::State& state) {
  RunPrepareLatency(state, false);
}
void BM_PrepareLatencyWithEarlyPrepare(benchmark::State& state) {
  RunPrepareLatency(state, true);
}

// Total stable bytes written per action as abort probability rises: early
// prepare wastes the early writes of aborted actions.
void RunBytesVsAborts(benchmark::State& state, bool early) {
  double abort_probability = static_cast<double>(state.range(0)) / 100.0;
  BenchGuardian guardian(LogMode::kHybrid, kObjects, kValueSize);
  Rng rng(9);
  std::uint64_t actions = 0;
  std::uint64_t bytes_before = guardian.rs().log().medium().physical_bytes_written();
  for (auto _ : state) {
    ActionId aid = guardian.NewAction();
    ActionContext ctx(aid);
    for (std::size_t i = 0; i < kWrites; ++i) {
      RecoverableObject* obj = guardian.heap().Get(
          guardian.heap().root()->base_version().as_record()
              .at("obj" + std::to_string(rng.NextU64() % kObjects))
              .as_ref()->uid());
      Status s = ctx.WriteObject(obj, guardian.MakeValue(1));
      (void)s;
    }
    if (early) {
      Result<ModifiedObjectsSet> leftover = guardian.rs().WriteEntry(aid, ctx.TakeMos());
      ARGUS_CHECK(leftover.ok());
      ctx.AddToMos(leftover.value());
      ARGUS_CHECK(guardian.rs().log().Force().ok());
    }
    if (rng.NextBool(abort_probability)) {
      ARGUS_CHECK(guardian.rs().Abort(aid).ok());
      ctx.AbortVolatile(guardian.heap());
    } else {
      ARGUS_CHECK(guardian.rs().Prepare(aid, ctx.TakeMos()).ok());
      ARGUS_CHECK(guardian.rs().Commit(aid).ok());
      ctx.CommitVolatile(guardian.heap());
    }
    ++actions;
  }
  std::uint64_t bytes = guardian.rs().log().medium().physical_bytes_written() - bytes_before;
  state.counters["bytes/action"] =
      benchmark::Counter(static_cast<double>(bytes) / static_cast<double>(actions));
}

void BM_BytesPerActionNoEarlyPrepare(benchmark::State& state) {
  RunBytesVsAborts(state, false);
}
void BM_BytesPerActionWithEarlyPrepare(benchmark::State& state) {
  RunBytesVsAborts(state, true);
}

BENCHMARK(BM_PrepareLatencyNoEarlyPrepare)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PrepareLatencyWithEarlyPrepare)->Unit(benchmark::kMicrosecond);
// Argument = abort probability in percent.
BENCHMARK(BM_BytesPerActionNoEarlyPrepare)->Arg(0)->Arg(20)->Arg(50);
BENCHMARK(BM_BytesPerActionWithEarlyPrepare)->Arg(0)->Arg(20)->Arg(50);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_early_prepare)
