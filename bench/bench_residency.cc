// E17 — the beyond-RAM object store. A working set several times larger than
// the memory budget runs a skewed read/write mix; the ResidencyManager demotes
// cold committed objects to log stubs and faults them back through the
// batched validated read path. Reported per budget ratio (arg 0 = the
// all-resident paper baseline):
//   - throughput (actions/s) vs the baseline
//   - resident_mb and under_watermark (1 when the budget held after warm-up)
//   - faults, fault_batches, reads_per_fault (batching efficiency: ~1 frame
//     per faulted object, never 2+)
//   - fault latency percentiles (also residency.fault_ns in the metrics
//     snapshot, alongside the residency.* counters)
//
// `./bench_residency --json` writes BENCH_residency.json +
// BENCH_residency.metrics.json (schema-checked in CI with
// `--require residency.`).

#include <chrono>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"
#include "src/residency/residency_manager.h"

namespace argus {
namespace {

constexpr std::size_t kObjects = 1024;
constexpr std::size_t kValueBytes = 2048;

// Object pointers survive eviction (the stub keeps the RecoverableObject
// alive), so collecting them once from the root record is safe.
std::vector<RecoverableObject*> CollectObjects(BenchGuardian& guard) {
  std::vector<RecoverableObject*> out;
  out.reserve(kObjects);
  const Value::Record& root = guard.heap().root()->base_version().as_record();
  for (std::size_t i = 0; i < kObjects; ++i) {
    out.push_back(root.at("obj" + std::to_string(i)).as_ref());
  }
  return out;
}

// arg: working-set-to-budget ratio; 0 = no budget (all resident).
void BM_ResidencyWorkload(benchmark::State& state) {
  const std::uint64_t ratio = static_cast<std::uint64_t>(state.range(0));
  RecoverySystemConfig config = BenchConfig(LogMode::kHybrid);
  if (ratio > 0) {
    config.residency.mem_budget_bytes = (kObjects * kValueBytes) / ratio;
  }
  BenchGuardian guard(config, kObjects, kValueBytes);
  ResidencyManager* rm = guard.rs().residency();
  std::vector<RecoverableObject*> objects = CollectObjects(guard);

  // Warm up: one pass demotes the cold bulk before timing starts, so the
  // steady state (not the initial drain) is what the loop measures.
  if (rm != nullptr) {
    rm->RunEvictionPass();
  }

  LatencyRecorder fault_latency("residency.bench_fault_ns");
  Rng rng(1234);
  std::uint64_t actions = 0;
  std::uint64_t over_watermark_checks = 0;
  for (auto _ : state) {
    ActionId aid = guard.NewAction();
    ActionContext ctx(aid);
    if (rm != nullptr) {
      ctx.BindResidency(rm);
    }
    // Skewed touch pattern: half the traffic hits an 1/8th-sized hot set, so
    // the clock has a real cold tail to demote.
    std::size_t hot = kObjects / 8;
    std::size_t index = rng.NextBool(0.5) ? rng.NextU64() % hot : rng.NextU64() % kObjects;
    RecoverableObject* obj = objects[index];
    bool was_evicted = obj->evicted();
    auto fault_start = std::chrono::steady_clock::now();
    Status s = ctx.WriteObject(obj, guard.MakeValue(static_cast<std::int64_t>(actions)));
    ARGUS_CHECK_MSG(s.ok(), s.message().c_str());
    if (was_evicted) {
      fault_latency.Record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - fault_start)
              .count()));
    }
    s = guard.rs().Prepare(aid, ctx.TakeMos());
    ARGUS_CHECK(s.ok());
    s = guard.rs().Commit(aid);
    ARGUS_CHECK(s.ok());
    ctx.CommitVolatile(guard.heap());

    ++actions;
    if (rm != nullptr && actions % 8 == 0) {
      rm->RunEvictionPass();
      if (rm->resident_bytes() > rm->high_watermark_bytes()) {
        ++over_watermark_checks;
      }
    }
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(actions));
  if (rm != nullptr) {
    const ResidencyStats& rs = rm->stats();
    state.counters["resident_mb"] =
        benchmark::Counter(static_cast<double>(rm->resident_bytes()) / (1024.0 * 1024.0));
    state.counters["budget_mb"] = benchmark::Counter(
        static_cast<double>(rm->config().mem_budget_bytes) / (1024.0 * 1024.0));
    state.counters["under_watermark"] =
        benchmark::Counter(over_watermark_checks == 0 ? 1.0 : 0.0);
    state.counters["evictions"] = benchmark::Counter(static_cast<double>(rs.evictions));
    state.counters["faults"] = benchmark::Counter(static_cast<double>(rs.faults));
    state.counters["fault_batches"] =
        benchmark::Counter(static_cast<double>(rs.fault_batches));
    state.counters["reads_per_fault"] = benchmark::Counter(
        rs.faults == 0 ? 0.0
                       : static_cast<double>(rs.fault_reads) / static_cast<double>(rs.faults));
    fault_latency.ExportCounters(state, "fault");
  } else {
    state.counters["resident_mb"] = benchmark::Counter(0.0);  // unbounded baseline
  }
}

BENCHMARK(BM_ResidencyWorkload)
    ->Arg(0)   // all resident: the paper's baseline
    ->Arg(4)   // working set 4x the budget
    ->Arg(8)   // 8x
    ->Unit(benchmark::kMicrosecond);

// Cold-scan fault storm: after the working set is fully demoted, touch every
// object once in uid order. Chain-adjacent stubs make the prefetcher's
// best-effort ReadMany ranges visible in reads_per_fault and
// residency.prefetch_ranges.
void BM_ResidencyColdScan(benchmark::State& state) {
  const std::uint64_t ratio = static_cast<std::uint64_t>(state.range(0));
  RecoverySystemConfig config = BenchConfig(LogMode::kHybrid);
  config.residency.mem_budget_bytes = (kObjects * kValueBytes) / ratio;
  BenchGuardian guard(config, kObjects, kValueBytes);
  ResidencyManager* rm = guard.rs().residency();
  ARGUS_CHECK(rm != nullptr);
  std::vector<RecoverableObject*> objects = CollectObjects(guard);

  std::uint64_t scans = 0;
  for (auto _ : state) {
    state.PauseTiming();
    while (rm->RunEvictionPass() > 0) {
    }
    state.ResumeTiming();
    ActionId aid = guard.NewAction();
    ActionContext ctx(aid);
    ctx.BindResidency(rm);
    for (RecoverableObject* obj : objects) {
      Result<Value> v = ctx.ReadObject(obj);
      ARGUS_CHECK_MSG(v.ok(), v.status().message().c_str());
      benchmark::DoNotOptimize(v.value());
    }
    ctx.AbortVolatile(guard.heap());
    ++scans;
  }

  const ResidencyStats& rs = rm->stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(scans * kObjects));
  state.counters["faults"] = benchmark::Counter(static_cast<double>(rs.faults));
  state.counters["reads_per_fault"] = benchmark::Counter(
      rs.faults == 0 ? 0.0
                     : static_cast<double>(rs.fault_reads) / static_cast<double>(rs.faults));
  state.counters["prefetch_ranges"] =
      benchmark::Counter(static_cast<double>(rs.prefetch_ranges));
}

BENCHMARK(BM_ResidencyColdScan)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_residency)
