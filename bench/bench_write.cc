// Experiment E1 — writing cost (§1.2.2, §4.1).
//
// Claim: "Log ⇒ fast writing … Shadowing ⇒ slow writing"; the hybrid log
// writes "almost as fast as the pure log". Shadowing's commit cost grows with
// the TOTAL number of objects (the whole map is rewritten per commit), while
// both log organizations pay only for the modified set.
//
// Each benchmark commits one action that modifies `writes_per_action` objects
// out of `total_objects`, and reports bytes_forced/commit — the stable-storage
// currency the thesis argues in.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"
#include "src/shadow/shadow_store.h"

namespace argus {
namespace {

constexpr std::size_t kWritesPerAction = 8;
constexpr std::size_t kValueSize = 64;

void RunLogCommit(benchmark::State& state, LogMode mode) {
  std::size_t total_objects = static_cast<std::size_t>(state.range(0));
  BenchGuardian guardian(mode, total_objects, kValueSize);
  Rng rng(42);
  std::uint64_t bytes_before = guardian.rs().log().stats().bytes_forced;
  std::uint64_t commits = 0;
  for (auto _ : state) {
    guardian.CommitAction(rng, kWritesPerAction);
    ++commits;
  }
  std::uint64_t bytes = guardian.rs().log().stats().bytes_forced - bytes_before;
  state.counters["bytes/commit"] =
      benchmark::Counter(static_cast<double>(bytes) / static_cast<double>(commits));
  state.counters["forces/commit"] = benchmark::Counter(
      static_cast<double>(guardian.rs().log().stats().forces) / static_cast<double>(commits));
}

void BM_SimpleLogCommit(benchmark::State& state) { RunLogCommit(state, LogMode::kSimple); }
void BM_HybridLogCommit(benchmark::State& state) { RunLogCommit(state, LogMode::kHybrid); }

void BM_ShadowCommit(benchmark::State& state) {
  std::size_t total_objects = static_cast<std::size_t>(state.range(0));
  auto medium = std::make_unique<InMemoryStableMedium>();
  InMemoryStableMedium* medium_ptr = medium.get();
  ShadowStore store(std::move(medium));
  std::vector<std::byte> payload(kValueSize, std::byte{'x'});
  // Install the full object population first.
  for (std::uint64_t i = 0; i < total_objects; ++i) {
    ActionId t{GuardianId{0}, i + 1};
    Status s = store.Prepare(t, {{Uid{i}, payload}});
    ARGUS_CHECK(s.ok());
    s = store.Commit(t);
    ARGUS_CHECK(s.ok());
  }
  Rng rng(42);
  std::uint64_t seq = total_objects + 1;
  std::uint64_t bytes_before = medium_ptr->physical_bytes_written();
  std::uint64_t commits = 0;
  for (auto _ : state) {
    ActionId t{GuardianId{0}, seq++};
    std::vector<std::pair<Uid, std::vector<std::byte>>> versions;
    versions.reserve(kWritesPerAction);
    for (std::size_t i = 0; i < kWritesPerAction; ++i) {
      versions.emplace_back(Uid{rng.NextU64() % total_objects}, payload);
    }
    Status s = store.Prepare(t, versions);
    ARGUS_CHECK(s.ok());
    s = store.Commit(t);
    ARGUS_CHECK(s.ok());
    ++commits;
  }
  std::uint64_t bytes = medium_ptr->physical_bytes_written() - bytes_before;
  state.counters["bytes/commit"] =
      benchmark::Counter(static_cast<double>(bytes) / static_cast<double>(commits));
}

BENCHMARK(BM_SimpleLogCommit)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_HybridLogCommit)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_ShadowCommit)->Arg(64)->Arg(512)->Arg(4096);

// Sweep the write-set size at fixed population: log cost tracks the write
// set; shadow cost stays dominated by the map.
void BM_HybridLogCommitByWriteSet(benchmark::State& state) {
  BenchGuardian guardian(LogMode::kHybrid, 1024, kValueSize);
  Rng rng(42);
  std::uint64_t bytes_before = guardian.rs().log().stats().bytes_forced;
  std::uint64_t commits = 0;
  for (auto _ : state) {
    guardian.CommitAction(rng, static_cast<std::size_t>(state.range(0)));
    ++commits;
  }
  std::uint64_t bytes = guardian.rs().log().stats().bytes_forced - bytes_before;
  state.counters["bytes/commit"] =
      benchmark::Counter(static_cast<double>(bytes) / static_cast<double>(commits));
}
BENCHMARK(BM_HybridLogCommitByWriteSet)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_write)
