// Shared workload builders for the benchmark harness, a thread-safe latency
// recorder for tail-latency counters, and the common main() that adds a
// --json flag (writes BENCH_<name>.json via benchmark's JSON reporter, plus
// BENCH_<name>.metrics.json — the obs registry snapshot).

#ifndef BENCH_BENCH_SUPPORT_H_
#define BENCH_BENCH_SUPPORT_H_

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/object/action_context.h"
#include "src/obs/metrics.h"
#include "src/recovery/recovery_system.h"

namespace argus {

// Collects per-operation latency samples from concurrent threads and reports
// order statistics. Tail latency is the whole point of the online-checkpoint
// work — averages hide a 10 ms stop-the-world pause behind thousands of
// sub-µs commits, percentiles don't.
//
// Every sample is mirrored into a registry histogram (`metric`, default
// "bench.latency_ns") so the BENCH_<name>.metrics.json snapshot carries the
// distribution alongside the exact percentile counters.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(const char* metric = "bench.latency_ns")
      : hist_(obs::GetHistogram(metric)) {}

  void Record(std::uint64_t ns) {
    hist_->Record(ns);
    std::lock_guard<std::mutex> l(mu_);
    samples_.push_back(ns);
  }

  std::size_t Count() const {
    std::lock_guard<std::mutex> l(mu_);
    return samples_.size();
  }

  // p in [0, 100]; p=50 median, p=100 max. 0 when no samples.
  std::uint64_t PercentileNs(double p) const {
    std::lock_guard<std::mutex> l(mu_);
    if (samples_.empty()) {
      return 0;
    }
    std::vector<std::uint64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    std::size_t index = static_cast<std::size_t>(rank + 0.5);
    return sorted[std::min(index, sorted.size() - 1)];
  }

  std::uint64_t MaxNs() const { return PercentileNs(100.0); }

  void Reset() {
    std::lock_guard<std::mutex> l(mu_);
    samples_.clear();
  }

  // Publishes the standard percentile counters (µs) on a benchmark state.
  void ExportCounters(benchmark::State& state, const std::string& prefix) const {
    state.counters[prefix + "_p50_us"] =
        benchmark::Counter(static_cast<double>(PercentileNs(50.0)) / 1e3);
    state.counters[prefix + "_p99_us"] =
        benchmark::Counter(static_cast<double>(PercentileNs(99.0)) / 1e3);
    state.counters[prefix + "_max_us"] =
        benchmark::Counter(static_cast<double>(MaxNs()) / 1e3);
  }

 private:
  obs::Histogram* hist_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> samples_;
};

// main() body shared by every bench binary: strips our --json flag and, when
// present, injects benchmark's JSON reporter args so the run also writes
// BENCH_<name>.json next to the working directory (machine-readable snapshot
// for EXPERIMENTS.md and CI).
inline int RunBenchMain(const char* bench_name, int argc, char** argv) {
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 2);
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json = true;
      continue;
    }
    storage.emplace_back(argv[i]);
  }
  if (json) {
    std::string name = bench_name;
    if (name.rfind("bench_", 0) == 0) {
      name = name.substr(6);  // BENCH_workload.json, not BENCH_bench_workload.json
    }
    storage.push_back("--benchmark_out=BENCH_" + name + ".json");
    storage.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) {
    args.push_back(s.data());
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (json) {
    // Registry snapshot alongside the benchmark output: every counter, gauge,
    // and histogram the run touched, in the argus.metrics.v1 schema
    // (schema-checked by tools/check_metrics_schema.py in CI).
    std::string name = bench_name;
    if (name.rfind("bench_", 0) == 0) {
      name = name.substr(6);
    }
    std::string path = "BENCH_" + name + ".metrics.json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out != nullptr) {
      std::string doc = obs::Registry::Global().ToJson();
      std::fwrite(doc.data(), 1, doc.size(), out);
      std::fputc('\n', out);
      std::fclose(out);
    }
  }
  return 0;
}

inline RecoverySystemConfig BenchConfig(LogMode mode) {
  RecoverySystemConfig config;
  config.mode = mode;
  config.medium_factory = [] { return std::make_unique<InMemoryStableMedium>(); };
  return config;
}

// A guardian storage stack for benchmarks: heap + recovery system + per-action
// contexts, with `object_count` stable atomic objects "obj<i>" of `value_size`
// bytes payload.
class BenchGuardian {
 public:
  BenchGuardian(LogMode mode, std::size_t object_count, std::size_t value_size)
      : BenchGuardian(BenchConfig(mode), object_count, value_size) {}

  // Full-config variant (duplexed media, group commit, ...).
  BenchGuardian(const RecoverySystemConfig& config, std::size_t object_count,
                std::size_t value_size)
      : mode_(config.mode), object_count_(object_count), value_size_(value_size) {
    heap_ = std::make_unique<VolatileHeap>();
    rs_ = std::make_unique<RecoverySystem>(config, heap_.get());
    ActionId t0 = NewAction();
    ActionContext ctx(t0);
    Value::Record root;
    objects_.reserve(object_count);
    for (std::size_t i = 0; i < object_count; ++i) {
      RecoverableObject* obj = ctx.CreateAtomic(*heap_, MakeValue(0));
      objects_.push_back(obj);
      root["obj" + std::to_string(i)] = Value::Ref(obj);
    }
    Status s = ctx.UpdateObject(heap_->root(), [&](Value& r) { r.as_record() = root; });
    ARGUS_CHECK(s.ok());
    s = rs_->Prepare(t0, ctx.TakeMos());
    ARGUS_CHECK(s.ok());
    s = rs_->Commit(t0);
    ARGUS_CHECK(s.ok());
    ctx.CommitVolatile(*heap_);
  }

  // A string payload of value_size bytes tagged with `v`.
  Value MakeValue(std::int64_t v) {
    std::string payload(value_size_, 'x');
    return Value::OfRecord({{"v", Value::Int(v)}, {"pad", Value::Str(std::move(payload))}});
  }

  ActionId NewAction() { return ActionId{GuardianId{0}, next_seq_++}; }

  // One committed action modifying `writes` distinct objects.
  void CommitAction(Rng& rng, std::size_t writes) {
    ActionId aid = NewAction();
    ActionContext ctx(aid);
    for (std::size_t i = 0; i < writes; ++i) {
      std::size_t index =
          static_cast<std::size_t>((rng.NextU64() % object_count_ + i) % object_count_);
      Status s = ctx.WriteObject(objects_[index],
                                 MakeValue(static_cast<std::int64_t>(rng.NextU64() % 1000)));
      if (!s.ok()) {
        continue;  // self-conflict on duplicate index; skip
      }
    }
    Status s = rs_->Prepare(aid, ctx.TakeMos());
    ARGUS_CHECK(s.ok());
    s = rs_->Commit(aid);
    ARGUS_CHECK(s.ok());
    ctx.CommitVolatile(*heap_);
  }

  RecoverySystem& rs() { return *rs_; }
  VolatileHeap& heap() { return *heap_; }
  LogMode mode() const { return mode_; }

  // Crash and hand the surviving log to the caller.
  std::unique_ptr<StableLog> CrashAndTakeLog() {
    std::unique_ptr<StableLog> log = rs_->TakeLog();
    rs_.reset();
    heap_.reset();
    objects_.clear();
    return log;
  }

 private:
  LogMode mode_;
  std::size_t object_count_;
  std::size_t value_size_;
  std::unique_ptr<VolatileHeap> heap_;
  std::unique_ptr<RecoverySystem> rs_;
  std::vector<RecoverableObject*> objects_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace argus

// Replaces BENCHMARK_MAIN(): `./bench_foo --json` additionally writes
// BENCH_foo.json (pass the bare binary name, no quotes).
#define ARGUS_BENCH_MAIN(name)                                  \
  int main(int argc, char** argv) {                             \
    return ::argus::RunBenchMain(#name, argc, argv);            \
  }

#endif  // BENCH_BENCH_SUPPORT_H_
