// Shared workload builders for the benchmark harness.

#ifndef BENCH_BENCH_SUPPORT_H_
#define BENCH_BENCH_SUPPORT_H_

#include <map>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/object/action_context.h"
#include "src/recovery/recovery_system.h"

namespace argus {

inline RecoverySystemConfig BenchConfig(LogMode mode) {
  RecoverySystemConfig config;
  config.mode = mode;
  config.medium_factory = [] { return std::make_unique<InMemoryStableMedium>(); };
  return config;
}

// A guardian storage stack for benchmarks: heap + recovery system + per-action
// contexts, with `object_count` stable atomic objects "obj<i>" of `value_size`
// bytes payload.
class BenchGuardian {
 public:
  BenchGuardian(LogMode mode, std::size_t object_count, std::size_t value_size)
      : mode_(mode), object_count_(object_count), value_size_(value_size) {
    heap_ = std::make_unique<VolatileHeap>();
    rs_ = std::make_unique<RecoverySystem>(BenchConfig(mode), heap_.get());
    ActionId t0 = NewAction();
    ActionContext ctx(t0);
    Value::Record root;
    objects_.reserve(object_count);
    for (std::size_t i = 0; i < object_count; ++i) {
      RecoverableObject* obj = ctx.CreateAtomic(*heap_, MakeValue(0));
      objects_.push_back(obj);
      root["obj" + std::to_string(i)] = Value::Ref(obj);
    }
    Status s = ctx.UpdateObject(heap_->root(), [&](Value& r) { r.as_record() = root; });
    ARGUS_CHECK(s.ok());
    s = rs_->Prepare(t0, ctx.TakeMos());
    ARGUS_CHECK(s.ok());
    s = rs_->Commit(t0);
    ARGUS_CHECK(s.ok());
    ctx.CommitVolatile(*heap_);
  }

  // A string payload of value_size bytes tagged with `v`.
  Value MakeValue(std::int64_t v) {
    std::string payload(value_size_, 'x');
    return Value::OfRecord({{"v", Value::Int(v)}, {"pad", Value::Str(std::move(payload))}});
  }

  ActionId NewAction() { return ActionId{GuardianId{0}, next_seq_++}; }

  // One committed action modifying `writes` distinct objects.
  void CommitAction(Rng& rng, std::size_t writes) {
    ActionId aid = NewAction();
    ActionContext ctx(aid);
    for (std::size_t i = 0; i < writes; ++i) {
      std::size_t index =
          static_cast<std::size_t>((rng.NextU64() % object_count_ + i) % object_count_);
      Status s = ctx.WriteObject(objects_[index],
                                 MakeValue(static_cast<std::int64_t>(rng.NextU64() % 1000)));
      if (!s.ok()) {
        continue;  // self-conflict on duplicate index; skip
      }
    }
    Status s = rs_->Prepare(aid, ctx.TakeMos());
    ARGUS_CHECK(s.ok());
    s = rs_->Commit(aid);
    ARGUS_CHECK(s.ok());
    ctx.CommitVolatile(*heap_);
  }

  RecoverySystem& rs() { return *rs_; }
  VolatileHeap& heap() { return *heap_; }
  LogMode mode() const { return mode_; }

  // Crash and hand the surviving log to the caller.
  std::unique_ptr<StableLog> CrashAndTakeLog() {
    std::unique_ptr<StableLog> log = rs_->TakeLog();
    rs_.reset();
    heap_.reset();
    objects_.clear();
    return log;
  }

 private:
  LogMode mode_;
  std::size_t object_count_;
  std::size_t value_size_;
  std::unique_ptr<VolatileHeap> heap_;
  std::unique_ptr<RecoverySystem> rs_;
  std::vector<RecoverableObject*> objects_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace argus

#endif  // BENCH_BENCH_SUPPORT_H_
