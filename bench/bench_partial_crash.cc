// Experiment E13 — partial-world outage throughput (DESIGN.md "Distributed
// failures").
//
// What does losing a random proper subset of guardians cost the survivors?
// The driver runs the concurrent workload with partial-crash injection: a
// worker's rng kills 1..N-1 guardians at the rendezvous (optionally behind a
// network partition), the survivors keep committing until the liveness floor
// is met, and a later roll recovers and reconciles the subset. Counters
// report the outage count, how much work committed anyway, and the minimum
// survivor commit growth any outage observed — the liveness margin.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_support.h"

#include "src/tpc/workload.h"

namespace argus {
namespace {

constexpr std::size_t kActions = 150;
constexpr std::size_t kThreads = 3;
constexpr std::size_t kGuardians = 3;

void RunPartialCrash(benchmark::State& state, bool partition_during_outage) {
  // partial-crash probability per action, in per-mille (0 = no-outage
  // baseline the storm runs are read against).
  const double partial_probability = static_cast<double>(state.range(0)) / 1000.0;

  std::uint64_t committed = 0;
  std::uint64_t partial_crashes = 0;
  std::uint64_t partial_recoveries = 0;
  std::uint64_t min_survivor_commits = ~std::uint64_t{0};
  for (auto _ : state) {
    state.PauseTiming();
    SimWorldConfig world_config;
    world_config.guardian_count = kGuardians;
    world_config.mode = LogMode::kHybrid;
    world_config.medium = MediumKind::kInMemory;
    world_config.seed = 13;
    world_config.group_commit = FlushCoordinatorConfig{};
    SimWorld world(world_config);
    WorkloadConfig config;
    config.seed = 13;
    config.threads = kThreads;
    config.abort_probability = 0.05;
    config.partial_crash_probability = partial_probability;
    config.partial_recover_probability = 0.2;
    config.partition_during_outage = partition_during_outage;
    config.min_survivor_commits = 2;
    WorkloadDriver driver(&world, config);
    Status s = driver.Setup();
    ARGUS_CHECK(s.ok());
    state.ResumeTiming();

    s = driver.Run(kActions);
    ARGUS_CHECK(s.ok());

    state.PauseTiming();
    committed += driver.stats().committed;
    partial_crashes += driver.stats().partial_crashes;
    partial_recoveries += driver.stats().partial_recoveries;
    if (driver.stats().partial_recoveries > 0) {
      min_survivor_commits =
          std::min(min_survivor_commits, driver.stats().min_outage_survivor_commits);
    }
    state.ResumeTiming();
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["committed"] = benchmark::Counter(static_cast<double>(committed) / iters);
  state.counters["partial_crashes"] =
      benchmark::Counter(static_cast<double>(partial_crashes) / iters);
  state.counters["partial_recoveries"] =
      benchmark::Counter(static_cast<double>(partial_recoveries) / iters);
  // The liveness witness: the smallest survivor commit growth any recovered
  // outage measured. 0 when no outage recovered mid-run (baseline arms).
  state.counters["min_survivor_commits"] = benchmark::Counter(
      min_survivor_commits == ~std::uint64_t{0} ? 0.0
                                                : static_cast<double>(min_survivor_commits));
  state.counters["actions_per_s"] =
      benchmark::Counter(static_cast<double>(committed), benchmark::Counter::kIsRate);
}

void BM_PartialCrash(benchmark::State& state) { RunPartialCrash(state, false); }
void BM_PartialCrashPartitioned(benchmark::State& state) { RunPartialCrash(state, true); }

// Args: partial-crash probability in per-mille.
BENCHMARK(BM_PartialCrash)
    ->Arg(0)
    ->Arg(60)
    ->Arg(120)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PartialCrashPartitioned)
    ->Arg(60)
    ->Arg(120)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_partial_crash)
