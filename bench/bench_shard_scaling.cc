// Experiment E14 — shard-scaling of guardian recovery (DESIGN.md "Sharded
// logs").
//
// One guardian's stable state partitioned across N ∈ {1, 2, 4, 8} log shards
// over duplexed media wrapped in a LatencyStableMedium: every block fill pays
// a fixed device latency, so recovery is I/O-bound the way a disk-backed
// restart is. The same seeded workload is committed at every N (the shard
// map just spreads it), then the guardian crashes and the timed region runs
// RecoverShardedHybridLog with N workers against cold caches. Per-shard scan
// and apply timings land in the metrics registry
// (recovery.shard.{scan,apply}_ns labeled by shard), force-batch stats come
// from the per-shard LogStats, and both ship in BENCH_shard_scaling.metrics.json
// when run with --json.
//
// ARGUS_BENCH_LARGE=1 selects the large configuration the E14 acceptance
// criterion is measured on (N=4 must recover ≥2x faster than N=1).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/bench_support.h"

#include "src/recovery/debug.h"
#include "src/recovery/recovery_algorithms.h"
#include "src/stable/duplexed_medium.h"
#include "src/stable/latency_medium.h"

namespace argus {
namespace {

struct ShardBenchConfig {
  std::size_t objects = 24;
  std::size_t value_size = 256;
  std::size_t actions = 150;
  std::size_t writes_per_action = 2;
  std::chrono::microseconds read_latency{300};
};

ShardBenchConfig PickConfig() {
  ShardBenchConfig config;
  const char* large = std::getenv("ARGUS_BENCH_LARGE");
  if (large != nullptr && large[0] == '1') {
    config.objects = 48;
    config.value_size = 1024;
    config.actions = 600;
    config.writes_per_action = 3;
    config.read_latency = std::chrono::microseconds{1000};
  }
  return config;
}

// The guardian under test: hybrid mode, N shards, duplexed media behind the
// latency decorator. Appends stay free so the build phase is fast; only the
// recovery reads pay the device cost.
RecoverySystemConfig ShardedConfig(std::uint32_t shards, const ShardBenchConfig& bench) {
  RecoverySystemConfig config;
  config.mode = LogMode::kHybrid;
  config.log_shards = shards;
  config.shard_salt = 0x5eedu;
  config.shard_recovery_workers = shards;
  config.medium_factory = [latency = bench.read_latency] {
    return std::make_unique<LatencyStableMedium>(std::make_unique<DuplexedStableMedium>(),
                                                 latency);
  };
  return config;
}

void BM_ShardedRecovery(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  const ShardBenchConfig bench = PickConfig();

  // Build the same committed history at every N, crash, and make the logs
  // readable again (RecoverAfterCrash also drops their block caches).
  RecoverySystem::SurvivingState surviving;
  {
    BenchGuardian guardian(ShardedConfig(shards, bench), bench.objects, bench.value_size);
    Rng rng(0xe14);
    for (std::size_t i = 0; i < bench.actions; ++i) {
      guardian.CommitAction(rng, bench.writes_per_action);
    }
    surviving = guardian.rs().TakeSurvivingState();
  }
  std::vector<StableLog*> raw;
  std::uint64_t total_durable = 0;
  std::uint64_t max_durable = 0;
  for (const auto& log : surviving.logs) {
    ARGUS_CHECK(log->RecoverAfterCrash().ok());
    total_durable += log->durable_size();
    max_durable = std::max(max_durable, log->durable_size());
    raw.push_back(log.get());
  }

  ShardedRecoveryOptions options;
  options.workers = shards;
  std::uint64_t recovered_objects = 0;
  for (auto _ : state) {
    // Cold-cache recovery each iteration: every block fill goes back to the
    // latency-charged medium, as it would on a real restart.
    for (StableLog* log : raw) {
      log->read_cache().Clear();
    }
    VolatileHeap heap;
    Result<ShardedRecoveryResult> result = RecoverShardedHybridLog(
        std::span<StableLog* const>(raw.data(), raw.size()), heap, options);
    ARGUS_CHECK(result.ok());
    recovered_objects = result.value().merged.ot.size();
  }

  // Force-batch stats from the build phase, rolled up across shards.
  std::vector<LogStats> per_shard;
  per_shard.reserve(raw.size());
  for (StableLog* log : raw) {
    per_shard.push_back(log->StatsSnapshot());
  }
  LogStats rollup = AggregateLogStats(per_shard);
  state.counters["shards"] = benchmark::Counter(static_cast<double>(shards));
  state.counters["durable_bytes"] = benchmark::Counter(static_cast<double>(total_durable));
  // max/avg durable bytes: 1.0 means perfectly balanced shards; the skew is
  // the ceiling on parallel-recovery speedup.
  state.counters["shard_skew"] = benchmark::Counter(
      static_cast<double>(max_durable) /
      (static_cast<double>(total_durable) / static_cast<double>(raw.size())));
  state.counters["recovered_objects"] =
      benchmark::Counter(static_cast<double>(recovered_objects));
  state.counters["forces"] = benchmark::Counter(static_cast<double>(rollup.forces));
  state.counters["entries_per_force"] = benchmark::Counter(rollup.entries_per_force());
  state.counters["max_entries_per_force"] =
      benchmark::Counter(static_cast<double>(rollup.max_entries_per_force));
}
BENCHMARK(BM_ShardedRecovery)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.4);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_shard_scaling)
