// Experiment E12 — crash-storm cost (DESIGN.md "Crash coherence").
//
// How expensive is a coherent world crash plus full recovery relative to the
// traffic it interrupts? The driver runs the concurrent workload with crash
// injection and (optionally) recovery-time media faults on the duplexed
// stack; counters report how many crashes the run absorbed, how much work
// committed anyway, and how many actions ended in doubt.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/tpc/workload.h"

namespace argus {
namespace {

constexpr std::size_t kActions = 120;
constexpr std::size_t kThreads = 3;

void RunCrashStorm(benchmark::State& state, MediumKind medium, bool recovery_faults) {
  // crash probability per action, in per-mille (0 = uninterrupted baseline).
  const double crash_probability = static_cast<double>(state.range(0)) / 1000.0;

  std::uint64_t committed = 0;
  std::uint64_t crashes = 0;
  std::uint64_t in_doubt = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimWorldConfig world_config;
    world_config.guardian_count = 2;
    world_config.mode = LogMode::kHybrid;
    world_config.medium = medium;
    world_config.seed = 7;
    world_config.group_commit = FlushCoordinatorConfig{};
    SimWorld world(world_config);
    WorkloadConfig config;
    config.seed = 7;
    config.threads = kThreads;
    config.abort_probability = 0.05;
    config.crash_probability = crash_probability;
    if (recovery_faults && crash_probability > 0.0) {
      DiskFaultPlan storm;
      storm.decay_on_read_probability = 0.05;
      storm.transient_read_error_probability = 0.01;
      config.recovery_faults = storm;
    }
    WorkloadDriver driver(&world, config);
    Status s = driver.Setup();
    ARGUS_CHECK(s.ok());
    state.ResumeTiming();

    s = driver.Run(kActions);
    ARGUS_CHECK(s.ok());

    state.PauseTiming();
    committed += driver.stats().committed;
    crashes += driver.stats().crashes;
    in_doubt += driver.stats().in_doubt;
    state.ResumeTiming();
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["committed"] = benchmark::Counter(static_cast<double>(committed) / iters);
  state.counters["crashes"] = benchmark::Counter(static_cast<double>(crashes) / iters);
  state.counters["in_doubt"] = benchmark::Counter(static_cast<double>(in_doubt) / iters);
  state.counters["actions_per_s"] = benchmark::Counter(
      static_cast<double>(committed), benchmark::Counter::kIsRate);
}

void BM_CrashStormInMemory(benchmark::State& state) {
  RunCrashStorm(state, MediumKind::kInMemory, false);
}
void BM_CrashStormDuplexedFaults(benchmark::State& state) {
  RunCrashStorm(state, MediumKind::kDuplexed, true);
}

// Args: crash probability in per-mille. 0 is the no-crash baseline the storm
// runs are read against.
BENCHMARK(BM_CrashStormInMemory)
    ->Arg(0)
    ->Arg(50)
    ->Arg(150)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CrashStormDuplexedFaults)
    ->Arg(0)
    ->Arg(50)
    ->Arg(150)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_crash_storm)
