// Experiment E2 — recovery cost (§1.2.2, §4.1).
//
// Claim: simple-log recovery "tends to be slow because the entire log must be
// consulted"; hybrid recovery is faster (it walks only the outcome chain and
// dereferences the data entries it actually copies); shadowing recovery is
// fastest (read the map). We build a history of `history_len` committed
// actions over a small live set and measure time plus entries examined.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"
#include "src/recovery/recovery_algorithms.h"
#include "src/shadow/shadow_store.h"

namespace argus {
namespace {

constexpr std::size_t kLiveObjects = 64;
constexpr std::size_t kValueSize = 64;
constexpr std::size_t kWritesPerAction = 4;

std::unique_ptr<StableLog> BuildHistory(LogMode mode, std::size_t history_len) {
  BenchGuardian guardian(mode, kLiveObjects, kValueSize);
  Rng rng(7);
  for (std::size_t i = 0; i < history_len; ++i) {
    guardian.CommitAction(rng, kWritesPerAction);
  }
  std::unique_ptr<StableLog> log = guardian.CrashAndTakeLog();
  Result<std::uint64_t> r = log->RecoverAfterCrash();
  ARGUS_CHECK(r.ok());
  return log;
}

void RunRecovery(benchmark::State& state, LogMode mode) {
  std::size_t history_len = static_cast<std::size_t>(state.range(0));
  std::unique_ptr<StableLog> log = BuildHistory(mode, history_len);
  std::uint64_t entries = 0;
  std::uint64_t data_reads = 0;
  for (auto _ : state) {
    VolatileHeap heap;
    Result<RecoveryResult> r = mode == LogMode::kSimple ? RecoverSimpleLog(*log, heap)
                                                        : RecoverHybridLog(*log, heap);
    ARGUS_CHECK(r.ok());
    entries = r.value().entries_examined;
    data_reads = r.value().data_entries_read;
    benchmark::DoNotOptimize(r.value().ot.size());
  }
  state.counters["entries_examined"] = benchmark::Counter(static_cast<double>(entries));
  state.counters["data_entries_read"] = benchmark::Counter(static_cast<double>(data_reads));
  state.counters["log_bytes"] = benchmark::Counter(static_cast<double>(log->durable_size()));
}

void BM_SimpleLogRecovery(benchmark::State& state) { RunRecovery(state, LogMode::kSimple); }
void BM_HybridLogRecovery(benchmark::State& state) { RunRecovery(state, LogMode::kHybrid); }

void BM_ShadowRecovery(benchmark::State& state) {
  std::size_t history_len = static_cast<std::size_t>(state.range(0));
  ShadowStore store(std::make_unique<InMemoryStableMedium>());
  std::vector<std::byte> payload(kValueSize, std::byte{'x'});
  Rng rng(7);
  for (std::size_t i = 0; i < kLiveObjects; ++i) {
    ActionId t{GuardianId{0}, i + 1};
    ARGUS_CHECK(store.Prepare(t, {{Uid{i}, payload}}).ok());
    ARGUS_CHECK(store.Commit(t).ok());
  }
  for (std::size_t i = 0; i < history_len; ++i) {
    ActionId t{GuardianId{0}, 1000 + i};
    std::vector<std::pair<Uid, std::vector<std::byte>>> versions;
    for (std::size_t j = 0; j < kWritesPerAction; ++j) {
      versions.emplace_back(Uid{rng.NextU64() % kLiveObjects}, payload);
    }
    ARGUS_CHECK(store.Prepare(t, versions).ok());
    ARGUS_CHECK(store.Commit(t).ok());
  }
  for (auto _ : state) {
    Result<std::size_t> r = store.Recover();
    ARGUS_CHECK(r.ok());
    benchmark::DoNotOptimize(r.value());
  }
  state.counters["entries_examined"] =
      benchmark::Counter(static_cast<double>(kLiveObjects));  // the map entries
}

BENCHMARK(BM_SimpleLogRecovery)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HybridLogRecovery)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ShadowRecovery)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_recovery)
