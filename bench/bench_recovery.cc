// Experiment E2 — recovery cost (§1.2.2, §4.1) — and E11 — pipelined hybrid
// recovery with the read-optimized log layer.
//
// E2 claim: simple-log recovery "tends to be slow because the entire log must
// be consulted"; hybrid recovery is faster (it walks only the outcome chain
// and dereferences the data entries it actually copies); shadowing recovery is
// fastest (read the map). We build a history of `history_len` committed
// actions over a small live set and measure time plus entries examined.
//
// E11 claim: the hybrid restart itself is a streaming, prefetchable read
// workload. The serial baseline reproduces the pre-E11 stack end to end:
// workers=0, cache disabled (two medium reads per frame), and the byte-table
// CRC that every page and frame check used before slicing. The pipelined
// variant is the new stack: slice-by-8 CRC, block cache with chain-directed
// read-ahead, and data-entry dereferences fanned out to a worker pool.
// Measured on in-memory and duplexed media; the large history (~10^6 log
// entries, ARGUS_BENCH_LARGE=1) is the ROADMAP north-star datapoint recorded
// in BENCH_recovery.json.

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"
#include "src/common/crc32.h"
#include "src/recovery/recovery_algorithms.h"
#include "src/shadow/shadow_store.h"
#include "src/stable/duplexed_medium.h"

namespace argus {
namespace {

constexpr std::size_t kLiveObjects = 64;
constexpr std::size_t kValueSize = 64;
constexpr std::size_t kWritesPerAction = 4;

std::unique_ptr<StableLog> BuildHistory(LogMode mode, std::size_t history_len) {
  BenchGuardian guardian(mode, kLiveObjects, kValueSize);
  Rng rng(7);
  for (std::size_t i = 0; i < history_len; ++i) {
    guardian.CommitAction(rng, kWritesPerAction);
  }
  std::unique_ptr<StableLog> log = guardian.CrashAndTakeLog();
  Result<std::uint64_t> r = log->RecoverAfterCrash();
  ARGUS_CHECK(r.ok());
  return log;
}

void RunRecovery(benchmark::State& state, LogMode mode) {
  std::size_t history_len = static_cast<std::size_t>(state.range(0));
  std::unique_ptr<StableLog> log = BuildHistory(mode, history_len);
  std::uint64_t entries = 0;
  std::uint64_t data_reads = 0;
  for (auto _ : state) {
    VolatileHeap heap;
    Result<RecoveryResult> r = mode == LogMode::kSimple ? RecoverSimpleLog(*log, heap)
                                                        : RecoverHybridLog(*log, heap);
    ARGUS_CHECK(r.ok());
    entries = r.value().entries_examined;
    data_reads = r.value().data_entries_read;
    benchmark::DoNotOptimize(r.value().ot.size());
  }
  state.counters["entries_examined"] = benchmark::Counter(static_cast<double>(entries));
  state.counters["data_entries_read"] = benchmark::Counter(static_cast<double>(data_reads));
  state.counters["log_bytes"] = benchmark::Counter(static_cast<double>(log->durable_size()));
}

void BM_SimpleLogRecovery(benchmark::State& state) { RunRecovery(state, LogMode::kSimple); }
void BM_HybridLogRecovery(benchmark::State& state) { RunRecovery(state, LogMode::kHybrid); }

void BM_ShadowRecovery(benchmark::State& state) {
  std::size_t history_len = static_cast<std::size_t>(state.range(0));
  ShadowStore store(std::make_unique<InMemoryStableMedium>());
  std::vector<std::byte> payload(kValueSize, std::byte{'x'});
  Rng rng(7);
  for (std::size_t i = 0; i < kLiveObjects; ++i) {
    ActionId t{GuardianId{0}, i + 1};
    ARGUS_CHECK(store.Prepare(t, {{Uid{i}, payload}}).ok());
    ARGUS_CHECK(store.Commit(t).ok());
  }
  for (std::size_t i = 0; i < history_len; ++i) {
    ActionId t{GuardianId{0}, 1000 + i};
    std::vector<std::pair<Uid, std::vector<std::byte>>> versions;
    for (std::size_t j = 0; j < kWritesPerAction; ++j) {
      versions.emplace_back(Uid{rng.NextU64() % kLiveObjects}, payload);
    }
    ARGUS_CHECK(store.Prepare(t, versions).ok());
    ARGUS_CHECK(store.Commit(t).ok());
  }
  for (auto _ : state) {
    Result<std::size_t> r = store.Recover();
    ARGUS_CHECK(r.ok());
    benchmark::DoNotOptimize(r.value());
  }
  state.counters["entries_examined"] =
      benchmark::Counter(static_cast<double>(kLiveObjects));  // the map entries
}

BENCHMARK(BM_SimpleLogRecovery)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HybridLogRecovery)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ShadowRecovery)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

// ---- E11: serial vs pipelined hybrid restart ------------------------------

RecoverySystemConfig HybridConfig(bool duplexed) {
  RecoverySystemConfig config;
  config.mode = LogMode::kHybrid;
  if (duplexed) {
    config.medium_factory = [] { return std::make_unique<DuplexedStableMedium>(); };
  } else {
    config.medium_factory = [] { return std::make_unique<InMemoryStableMedium>(); };
  }
  return config;
}

// Histories are expensive to build (the large one is ~10^6 entries on
// duplexed media) and the serial and pipelined variants must recover the
// *same* log, so each (medium, history) log is built once and shared.
StableLog* SharedHybridLog(bool duplexed, std::size_t history_len) {
  static std::map<std::pair<bool, std::size_t>, std::unique_ptr<StableLog>> logs;
  auto key = std::make_pair(duplexed, history_len);
  auto it = logs.find(key);
  if (it == logs.end()) {
    BenchGuardian guardian(HybridConfig(duplexed), kLiveObjects, kValueSize);
    Rng rng(7);
    for (std::size_t i = 0; i < history_len; ++i) {
      guardian.CommitAction(rng, kWritesPerAction);
    }
    std::unique_ptr<StableLog> log = guardian.CrashAndTakeLog();
    Result<std::uint64_t> r = log->RecoverAfterCrash();
    ARGUS_CHECK(r.ok());
    it = logs.emplace(key, std::move(log)).first;
  }
  return it->second.get();
}

void RunHybridVariant(benchmark::State& state, bool duplexed, bool pipelined) {
  StableLog* log = SharedHybridLog(duplexed, static_cast<std::size_t>(state.range(0)));
  HybridRecoveryOptions options;
  if (!pipelined) {
    options.workers = 0;  // the pre-E11 serial algorithm
  } else {
    // Always exercise the pipelined driver, even where DefaultRecoveryWorkers
    // would fall back to serial on a single-core host.
    options.workers = std::max<std::size_t>(options.workers, 2);
  }
  // The serial baseline also pays the pre-E11 CRC on every page and frame
  // check; CRC values are identical either way, only the speed differs.
  SetCrc32Impl(pipelined ? Crc32Impl::kSliceBy8 : Crc32Impl::kByteTable);
  LogStats before = log->StatsSnapshot();
  std::uint64_t entries = 0;
  std::uint64_t data_reads = 0;
  for (auto _ : state) {
    // Cold restart each iteration: a fresh process has no cached blocks.
    log->read_cache().Clear();
    log->read_cache().SetEnabled(pipelined);
    VolatileHeap heap;
    Result<RecoveryResult> r = RecoverHybridLog(*log, heap, options);
    ARGUS_CHECK(r.ok());
    entries = r.value().entries_examined;
    data_reads = r.value().data_entries_read;
    benchmark::DoNotOptimize(r.value().ot.size());
  }
  SetCrc32Impl(Crc32Impl::kSliceBy8);
  LogStats after = log->StatsSnapshot();
  double iters = static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
  auto delta = [&](std::uint64_t LogStats::* field) {
    return static_cast<double>(after.*field - before.*field) / iters;
  };
  state.counters["entries_examined"] = benchmark::Counter(static_cast<double>(entries));
  state.counters["data_entries_read"] = benchmark::Counter(static_cast<double>(data_reads));
  state.counters["log_bytes"] = benchmark::Counter(static_cast<double>(log->durable_size()));
  state.counters["medium_bytes_read"] = benchmark::Counter(delta(&LogStats::cache_bytes_read));
  state.counters["cache_misses"] = benchmark::Counter(delta(&LogStats::cache_misses));
  double hits = delta(&LogStats::cache_hits);
  double misses = delta(&LogStats::cache_misses);
  state.counters["cache_hit_rate"] =
      benchmark::Counter(hits + misses == 0 ? 0.0 : hits / (hits + misses));
  state.counters["readahead_blocks"] = benchmark::Counter(delta(&LogStats::readahead_blocks));
  state.counters["pipeline_prefetches"] =
      benchmark::Counter(delta(&LogStats::pipeline_prefetches));
  double prefetches = delta(&LogStats::pipeline_prefetches);
  double prefetch_hits = delta(&LogStats::pipeline_prefetch_hits);
  state.counters["prefetch_hit_rate"] =
      benchmark::Counter(prefetches == 0 ? 0.0 : prefetch_hits / prefetches);
  state.counters["pipeline_sync_reads"] =
      benchmark::Counter(delta(&LogStats::pipeline_sync_reads));
}

void BM_HybridRestartSerial_Mem(benchmark::State& state) {
  RunHybridVariant(state, /*duplexed=*/false, /*pipelined=*/false);
}
void BM_HybridRestartPipelined_Mem(benchmark::State& state) {
  RunHybridVariant(state, /*duplexed=*/false, /*pipelined=*/true);
}
void BM_HybridRestartSerial_Duplexed(benchmark::State& state) {
  RunHybridVariant(state, /*duplexed=*/true, /*pipelined=*/false);
}
void BM_HybridRestartPipelined_Duplexed(benchmark::State& state) {
  RunHybridVariant(state, /*duplexed=*/true, /*pipelined=*/true);
}

// ~6 log entries per action (4 data + prepared + committed): the default arg
// is a quick smoke; ARGUS_BENCH_LARGE=1 adds the >=10^6-entry north-star log.
void HybridRestartArgs(benchmark::internal::Benchmark* b) {
  b->Arg(4096)->Unit(benchmark::kMillisecond);
  if (std::getenv("ARGUS_BENCH_LARGE") != nullptr) {
    b->Arg(175000);
  }
}

BENCHMARK(BM_HybridRestartSerial_Mem)->Apply(HybridRestartArgs);
BENCHMARK(BM_HybridRestartPipelined_Mem)->Apply(HybridRestartArgs);
BENCHMARK(BM_HybridRestartSerial_Duplexed)->Apply(HybridRestartArgs);
BENCHMARK(BM_HybridRestartPipelined_Duplexed)->Apply(HybridRestartArgs);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_recovery)
