// Experiment E10 — online checkpointing vs stop-the-world.
//
// The claim under test: housekeeping's cost need not be paid on the commit
// path. A stop-the-world checkpoint holds the guardian's staging mutex across
// capture + stage 1 + swap, so every concurrent committer stalls for the full
// checkpoint; the online path (capture / concurrent build / swap barrier)
// pauses writers only for the capture and the bounded stage-2 carry-over.
// Averages cannot see this — a handful of long pauses vanish among thousands
// of sub-millisecond commits — so the benchmark reports commit-latency
// percentiles (p50/p99/max) plus the longest single writer-visible pause.
//
// Sweep: client threads {1,2,4,8,16} × checkpoint mode {none, stop-the-world,
// online} on the duplexed medium with group commit. `none` is the latency
// floor and shows the price of never checkpointing: the post-run recovery
// counter (entries_examined) keeps growing, while both checkpointing modes
// keep it bounded.
//
// Run with --json to also write BENCH_bench_online_checkpoint.json.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/tpc/workload.h"

namespace argus {
namespace {

constexpr std::size_t kActionsPerIteration = 256;

enum CheckpointArm : std::int64_t {
  kNone = 0,
  kStopWorld = 1,
  kOnline = 2,
};

void RunOnlineCheckpoint(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const CheckpointArm arm = static_cast<CheckpointArm>(state.range(1));

  SimWorldConfig world_config;
  world_config.guardian_count = 1;  // one log: the contended resource
  world_config.mode = LogMode::kHybrid;
  world_config.medium = MediumKind::kDuplexed;
  world_config.seed = 53;
  FlushCoordinatorConfig gc;
  gc.batch_window = std::chrono::microseconds(100);
  gc.max_batch = threads;
  world_config.group_commit = gc;
  SimWorld world(world_config);

  LatencyRecorder commit_latency;
  WorkloadConfig config;
  config.seed = 53;
  config.abort_probability = 0.0;
  // A live set big enough that stage 1 (writing every object's committed
  // version to the new log, duplexed) dominates the checkpoint — that is the
  // work the online mode takes off the commit path.
  config.objects_per_guardian = 2048;
  config.threads = threads;
  config.commit_latency_ns = [&commit_latency](std::uint64_t ns) { commit_latency.Record(ns); };
  if (arm != kNone) {
    CheckpointPolicyConfig checkpoint;
    checkpoint.log_growth_bytes = 32 * 1024;
    checkpoint.entries_since_checkpoint = 0;
    config.checkpoint = checkpoint;
    config.checkpoint_mode =
        arm == kOnline ? CheckpointMode::kOnline : CheckpointMode::kStopTheWorld;
  }
  WorkloadDriver driver(&world, config);
  Status s = driver.Setup();
  ARGUS_CHECK(s.ok());

  for (auto _ : state) {
    s = driver.Run(kActionsPerIteration);
    ARGUS_CHECK_MSG(s.ok(), s.ToString().c_str());
  }

  commit_latency.ExportCounters(state, "commit");
  state.counters["commits"] = benchmark::Counter(static_cast<double>(driver.stats().committed),
                                                 benchmark::Counter::kIsRate);
  const CheckpointPauseStats& pauses = driver.checkpoint_pauses();
  state.counters["checkpoints"] =
      benchmark::Counter(static_cast<double>(driver.stats().checkpoints));
  state.counters["pause_max_us"] =
      benchmark::Counter(static_cast<double>(pauses.pause_ns_max) / 1e3);
  state.counters["pause_total_us"] =
      benchmark::Counter(static_cast<double>(pauses.pause_ns_total) / 1e3);
  state.counters["capture_max_us"] =
      benchmark::Counter(static_cast<double>(pauses.capture_ns_max) / 1e3);
  state.counters["build_max_us"] =
      benchmark::Counter(static_cast<double>(pauses.build_ns_max) / 1e3);
  state.counters["swap_max_us"] =
      benchmark::Counter(static_cast<double>(pauses.swap_ns_max) / 1e3);

  // The reason checkpointing exists at all (§5.1): recovery reads the whole
  // log. Crash and recover once after the run to show the bound.
  world.guardian(0u).Crash();
  Result<RecoveryInfo> info = world.guardian(0u).Restart();
  ARGUS_CHECK(info.ok());
  state.counters["recovery_entries_examined"] =
      benchmark::Counter(static_cast<double>(info.value().entries_examined));
}

void Sweep(benchmark::internal::Benchmark* b) {
  b->ArgNames({"threads", "checkpoint"});
  for (std::int64_t threads : {1, 2, 4, 8, 16}) {
    b->Args({threads, kNone});
    b->Args({threads, kStopWorld});
    b->Args({threads, kOnline});
  }
  b->Unit(benchmark::kMillisecond)->UseRealTime();
}

BENCHMARK(RunOnlineCheckpoint)->Apply(Sweep);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_online_checkpoint)
