// Experiment E7 — two-phase commit cost (§2.2, §3.3).
//
// Per committed action the protocol costs: each participant forces twice
// (prepared, committed) and the coordinator forces twice (committing, done).
// We sweep the number of participants and report commits/s, messages/action,
// and forces/action, plus the effect of mid-run crashes.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/common/rng.h"
#include "src/tpc/sim_world.h"

namespace argus {
namespace {

SimWorldConfig MakeConfig(std::size_t guardians) {
  SimWorldConfig config;
  config.guardian_count = guardians;
  config.mode = LogMode::kHybrid;
  config.seed = 21;
  return config;
}

void Seed(SimWorld& world, GuardianId gid) {
  Result<Guardian::ActionFate> fate =
      world.RunTopAction(gid, [&](SimWorld& w, ActionId aid) -> Status {
        return w.RunAt(aid, gid, [&](Guardian& g, ActionContext& ctx) -> Status {
          RecoverableObject* obj = ctx.CreateAtomic(g.heap(), Value::Int(0));
          return g.SetStableVariable(aid, "counter", obj);
        });
      });
  ARGUS_CHECK(fate.ok() && fate.value() == Guardian::ActionFate::kCommitted);
}

Status Bump(Guardian& g, ActionId aid, ActionContext& ctx) {
  Result<RecoverableObject*> v = g.GetStableVariable(aid, "counter");
  if (!v.ok()) {
    return v.status();
  }
  return ctx.UpdateObject(v.value(), [](Value& b) { b = Value::Int(b.as_int() + 1); });
}

void BM_TwoPhaseCommit(benchmark::State& state) {
  std::size_t participants = static_cast<std::size_t>(state.range(0));
  SimWorld world(MakeConfig(participants + 1));
  for (std::uint32_t i = 1; i <= participants; ++i) {
    Seed(world, GuardianId{i});
  }
  std::uint64_t messages_before = world.network().stats().delivered;
  std::uint64_t actions = 0;
  for (auto _ : state) {
    Result<Guardian::ActionFate> fate =
        world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
          for (std::uint32_t i = 1; i <= participants; ++i) {
            Status s = w.RunAt(aid, GuardianId{i}, [&](Guardian& g, ActionContext& ctx) {
              return Bump(g, aid, ctx);
            });
            if (!s.ok()) {
              return s;
            }
          }
          return Status::Ok();
        });
    ARGUS_CHECK(fate.ok() && fate.value() == Guardian::ActionFate::kCommitted);
    ++actions;
  }
  std::uint64_t messages = world.network().stats().delivered - messages_before;
  state.counters["messages/action"] =
      benchmark::Counter(static_cast<double>(messages) / static_cast<double>(actions));
  std::uint64_t forces = 0;
  for (std::uint32_t i = 0; i <= participants; ++i) {
    forces += world.guardian(i).recovery().log().stats().forces;
  }
  state.counters["forces/action"] =
      benchmark::Counter(static_cast<double>(forces) / static_cast<double>(actions));
  state.counters["participant_forces/action"] = benchmark::Counter(
      static_cast<double>(world.guardian(1).recovery().log().stats().forces) /
      static_cast<double>(actions));
}
BENCHMARK(BM_TwoPhaseCommit)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

// Same workload with a participant crash/restart every k actions: measures
// the throughput cost of recovery in the loop.
void BM_TwoPhaseWithCrashes(benchmark::State& state) {
  SimWorld world(MakeConfig(3));
  Seed(world, GuardianId{1});
  Seed(world, GuardianId{2});
  Rng rng(77);
  std::uint64_t actions = 0;
  for (auto _ : state) {
    Result<Guardian::ActionFate> fate =
        world.RunTopAction(GuardianId{0}, [&](SimWorld& w, ActionId aid) -> Status {
          for (std::uint32_t i = 1; i <= 2; ++i) {
            Status s = w.RunAt(aid, GuardianId{i}, [&](Guardian& g, ActionContext& ctx) {
              return Bump(g, aid, ctx);
            });
            if (!s.ok()) {
              return s;
            }
          }
          return Status::Ok();
        });
    ARGUS_CHECK(fate.ok());
    ++actions;
    if (actions % static_cast<std::uint64_t>(state.range(0)) == 0) {
      std::uint32_t victim = 1 + static_cast<std::uint32_t>(rng.NextBelow(2));
      world.guardian(victim).Crash();
      Result<RecoveryInfo> info = world.guardian(victim).Restart();
      ARGUS_CHECK(info.ok());
      world.Pump();
    }
  }
}
BENCHMARK(BM_TwoPhaseWithCrashes)->Arg(10)->Arg(100)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_two_phase)
