// Experiment E8 (extension) — end-to-end mixed workload.
//
// The "realistic application" measurement ch. 6 calls for as future work: a
// banking-style distributed workload over the full stack (guardians, 2PC,
// recovery system, checkpoint policy), comparing simple vs hybrid logs, the
// in-memory vs duplexed media, and the cost of periodic checkpoints.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/tpc/workload.h"

namespace argus {
namespace {

void RunWorkload(benchmark::State& state, LogMode mode, MediumKind medium,
                 bool with_checkpoints) {
  SimWorldConfig world_config;
  world_config.guardian_count = 3;
  world_config.mode = mode;
  world_config.medium = medium;
  world_config.seed = 31;
  SimWorld world(world_config);

  WorkloadConfig config;
  config.seed = 31;
  config.abort_probability = 0.05;
  config.early_prepare_probability = 0.2;
  if (with_checkpoints) {
    CheckpointPolicyConfig checkpoint;
    checkpoint.log_growth_bytes = 64 * 1024;
    config.checkpoint = checkpoint;
  }
  WorkloadDriver driver(&world, config);
  Status s = driver.Setup();
  ARGUS_CHECK(s.ok());

  LatencyRecorder latency;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    s = driver.Run(1);
    ARGUS_CHECK(s.ok());
    latency.Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             start)
            .count()));
  }
  latency.ExportCounters(state, "action");
  state.counters["committed"] = benchmark::Counter(
      static_cast<double>(driver.stats().committed), benchmark::Counter::kDefaults);
  state.counters["checkpoints"] =
      benchmark::Counter(static_cast<double>(driver.stats().checkpoints));
  std::uint64_t log_bytes = 0;
  for (std::uint32_t g = 0; g < world.guardian_count(); ++g) {
    log_bytes += world.guardian(g).recovery().log().durable_size();
  }
  state.counters["total_log_bytes"] = benchmark::Counter(static_cast<double>(log_bytes));
}

void BM_WorkloadSimpleLog(benchmark::State& state) {
  RunWorkload(state, LogMode::kSimple, MediumKind::kInMemory, false);
}
void BM_WorkloadHybridLog(benchmark::State& state) {
  RunWorkload(state, LogMode::kHybrid, MediumKind::kInMemory, false);
}
void BM_WorkloadHybridWithCheckpoints(benchmark::State& state) {
  RunWorkload(state, LogMode::kHybrid, MediumKind::kInMemory, true);
}
void BM_WorkloadHybridDuplexedMedium(benchmark::State& state) {
  RunWorkload(state, LogMode::kHybrid, MediumKind::kDuplexed, false);
}

BENCHMARK(BM_WorkloadSimpleLog)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WorkloadHybridLog)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WorkloadHybridWithCheckpoints)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WorkloadHybridDuplexedMedium)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_workload)
