// Experiment E15 — file-backed recovery over the batched read interface.
//
// Claim: once the log lives on a real filesystem, restart cost is dominated
// by how the bytes are fetched, not how they are decoded. The per-page pread
// baseline (cache off, one synchronous pread per frame probe) reproduces the
// pre-batching stack; the cached variants layer the block cache's scatter
// fills on top, in three gears — serial preads, coalesced preadv runs, and
// io_uring submission (when the kernel allows it; the gear silently degrades
// to preadv otherwise and the io_uring_active counter says which happened).
// Each variant runs against a tmpfs file (/dev/shm — syscall cost isolated
// from device cost) and a file in the working directory (whatever storage CI
// gives us). The metrics snapshot carries stable.file.batch_ns, the
// per-SubmitReads latency histogram.
//
// The acceptance datapoint (ARGUS_BENCH_LARGE=1, >=10^6-entry log): batched
// file-backed recovery must beat the per-page pread baseline by >=1.5x.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"
#include "src/recovery/recovery_algorithms.h"
#include "src/stable/file_medium.h"

namespace argus {
namespace {

constexpr std::size_t kLiveObjects = 64;
constexpr std::size_t kValueSize = 64;
constexpr std::size_t kWritesPerAction = 4;

// One in-memory history per length, dumped to raw bytes once — every file
// variant must recover the *same* log, and the builder is the slow part.
const std::vector<std::byte>& SharedHistoryBytes(std::size_t history_len) {
  static std::map<std::size_t, std::vector<std::byte>> histories;
  auto it = histories.find(history_len);
  if (it == histories.end()) {
    BenchGuardian guardian(LogMode::kHybrid, kLiveObjects, kValueSize);
    Rng rng(7);
    for (std::size_t i = 0; i < history_len; ++i) {
      guardian.CommitAction(rng, kWritesPerAction);
    }
    std::unique_ptr<StableLog> log = guardian.CrashAndTakeLog();
    Result<std::uint64_t> r = log->RecoverAfterCrash();
    ARGUS_CHECK(r.ok());
    std::vector<std::byte> raw(log->medium().durable_size());
    Status s = log->medium().ReadInto(0, std::span<std::byte>(raw.data(), raw.size()));
    ARGUS_CHECK(s.ok());
    it = histories.emplace(history_len, std::move(raw)).first;
  }
  return it->second;
}

// Lazily materializes the history file for a (directory, length) pair; all
// variants over that pair share one file. Returns "" when the directory is
// unusable (no /dev/shm on exotic CI hosts).
std::string HistoryFile(const std::string& dir, std::size_t history_len) {
  struct stat st{};
  if (::stat(dir.c_str(), &st) != 0) {
    return "";
  }
  static std::map<std::pair<std::string, std::size_t>, std::string> files;
  auto key = std::make_pair(dir, history_len);
  auto it = files.find(key);
  if (it == files.end()) {
    const std::vector<std::byte>& raw = SharedHistoryBytes(history_len);
    std::string path = dir + "/argus_e15_" + std::to_string(history_len) + ".log";
    std::remove(path.c_str());
    Result<std::unique_ptr<FileStableMedium>> writer =
        FileStableMedium::Open(path, FileStableMedium::BatchMode::kSerial);
    ARGUS_CHECK(writer.ok());
    ARGUS_CHECK(writer.value()->Append(std::span<const std::byte>(raw.data(), raw.size())).ok());
    it = files.emplace(key, std::move(path)).first;
  }
  return it->second;
}

struct FileVariant {
  FileStableMedium::BatchMode mode;
  bool cached;           // block cache + pipelined workers vs the bare baseline
  bool batch_prefetch;   // ReadMany-driven scatter prefetch
};

void RunFileRestart(benchmark::State& state, const std::string& dir, const FileVariant& v) {
  std::size_t history_len = static_cast<std::size_t>(state.range(0));
  std::string path = HistoryFile(dir, history_len);
  if (path.empty()) {
    state.SkipWithError(("directory unavailable: " + dir).c_str());
    return;
  }
  Result<std::unique_ptr<FileStableMedium>> medium = FileStableMedium::Open(path, v.mode);
  ARGUS_CHECK(medium.ok());
  FileStableMedium* file = medium.value().get();
  ReadCache::Config cache_config;
  cache_config.batch_prefetch = v.batch_prefetch;
  StableLog log(std::move(medium).value(), cache_config);
  ARGUS_CHECK(!log.empty());

  HybridRecoveryOptions options;
  options.workers = v.cached ? std::max<std::size_t>(options.workers, 2) : 0;

  obs::Counter* preads = obs::GetCounter("stable.file.preads");
  obs::Counter* preadv_calls = obs::GetCounter("stable.file.preadv_calls");
  obs::Counter* uring_batches = obs::GetCounter("stable.file.uring_batches");
  obs::Counter* batched_blocks = obs::GetCounter("stable.file.batched_blocks");
  const std::uint64_t preads0 = preads->Value();
  const std::uint64_t preadv0 = preadv_calls->Value();
  const std::uint64_t uring0 = uring_batches->Value();
  const std::uint64_t blocks0 = batched_blocks->Value();

  std::uint64_t entries = 0;
  for (auto _ : state) {
    // Cold restart each iteration: a fresh process has no cached blocks.
    log.read_cache().Clear();
    log.read_cache().SetEnabled(v.cached);
    VolatileHeap heap;
    Result<RecoveryResult> r = RecoverHybridLog(log, heap, options);
    ARGUS_CHECK(r.ok());
    entries = r.value().entries_examined;
    benchmark::DoNotOptimize(r.value().ot.size());
  }

  double iters = static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
  state.counters["entries_examined"] = benchmark::Counter(static_cast<double>(entries));
  state.counters["log_bytes"] = benchmark::Counter(static_cast<double>(log.durable_size()));
  state.counters["preads"] =
      benchmark::Counter(static_cast<double>(preads->Value() - preads0) / iters);
  state.counters["preadv_calls"] =
      benchmark::Counter(static_cast<double>(preadv_calls->Value() - preadv0) / iters);
  state.counters["uring_batches"] =
      benchmark::Counter(static_cast<double>(uring_batches->Value() - uring0) / iters);
  state.counters["batched_blocks"] =
      benchmark::Counter(static_cast<double>(batched_blocks->Value() - blocks0) / iters);
  state.counters["io_uring_active"] = benchmark::Counter(file->io_uring_active() ? 1.0 : 0.0);
}

constexpr FileVariant kBaseline = {FileStableMedium::BatchMode::kSerial, false, false};
constexpr FileVariant kCachedSerial = {FileStableMedium::BatchMode::kSerial, true, false};
constexpr FileVariant kCachedPreadv = {FileStableMedium::BatchMode::kPreadv, true, true};
constexpr FileVariant kCachedIoUring = {FileStableMedium::BatchMode::kAuto, true, true};

void BM_FileRestartBaselinePread_Shm(benchmark::State& state) {
  RunFileRestart(state, "/dev/shm", kBaseline);
}
void BM_FileRestartCachedSerial_Shm(benchmark::State& state) {
  RunFileRestart(state, "/dev/shm", kCachedSerial);
}
void BM_FileRestartCachedPreadv_Shm(benchmark::State& state) {
  RunFileRestart(state, "/dev/shm", kCachedPreadv);
}
void BM_FileRestartCachedIoUring_Shm(benchmark::State& state) {
  RunFileRestart(state, "/dev/shm", kCachedIoUring);
}
void BM_FileRestartBaselinePread_Disk(benchmark::State& state) {
  RunFileRestart(state, ".", kBaseline);
}
void BM_FileRestartCachedSerial_Disk(benchmark::State& state) {
  RunFileRestart(state, ".", kCachedSerial);
}
void BM_FileRestartCachedPreadv_Disk(benchmark::State& state) {
  RunFileRestart(state, ".", kCachedPreadv);
}
void BM_FileRestartCachedIoUring_Disk(benchmark::State& state) {
  RunFileRestart(state, ".", kCachedIoUring);
}

// ~6 log entries per action (4 data + prepared + committed): the default arg
// is a quick smoke; ARGUS_BENCH_LARGE=1 adds the >=10^6-entry acceptance log.
void FileRestartArgs(benchmark::internal::Benchmark* b) {
  b->Arg(4096)->Unit(benchmark::kMillisecond);
  if (std::getenv("ARGUS_BENCH_LARGE") != nullptr) {
    b->Arg(175000);
  }
}

BENCHMARK(BM_FileRestartBaselinePread_Shm)->Apply(FileRestartArgs);
BENCHMARK(BM_FileRestartCachedSerial_Shm)->Apply(FileRestartArgs);
BENCHMARK(BM_FileRestartCachedPreadv_Shm)->Apply(FileRestartArgs);
BENCHMARK(BM_FileRestartCachedIoUring_Shm)->Apply(FileRestartArgs);
BENCHMARK(BM_FileRestartBaselinePread_Disk)->Apply(FileRestartArgs);
BENCHMARK(BM_FileRestartCachedSerial_Disk)->Apply(FileRestartArgs);
BENCHMARK(BM_FileRestartCachedPreadv_Disk)->Apply(FileRestartArgs);
BENCHMARK(BM_FileRestartCachedIoUring_Disk)->Apply(FileRestartArgs);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_file_recovery)
