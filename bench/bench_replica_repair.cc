// Experiment E16 — online replica repair (DESIGN.md "Replicated stable
// storage").
//
// Three questions:
//   1. What does a decay storm cost the commit path when the background
//      repair loop is healing it, vs. letting the damage accumulate?
//      (BM_RepairStorm, repair on/off at N = 2, 3, 5.)
//   2. How long does re-silvering a blank replacement replica take as N
//      grows, and do writes keep flowing while it runs? (BM_OnlineResilver:
//      the measured region is exactly the resilver, with a mutator thread
//      committing throughout; its write count is exported as a counter.)
//   3. What does the always-on repair service cost the full stack when
//      nothing is broken? (BM_WorkloadWithRepair, service on/off.)

#include <atomic>
#include <thread>

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/stable/replicated_store.h"
#include "src/tpc/workload.h"

namespace argus {
namespace {

std::vector<std::byte> PageOf(std::uint8_t fill) {
  return std::vector<std::byte>(kDiskPageSize, std::byte{fill});
}

// ---------------------------------------------------------------------------
// 1. Commit traffic through a decay storm, repair on vs off
// ---------------------------------------------------------------------------

constexpr std::size_t kStormPages = 256;
constexpr int kStormOps = 4000;

void RunRepairStorm(benchmark::State& state, bool repair_on) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t ops = 0;
  std::uint64_t copies_healed = 0;
  std::uint64_t passes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ReplicatedStore store(kStormPages, n, 9);
    for (std::size_t p = 0; p < kStormPages; ++p) {
      ARGUS_CHECK(store.AtomicWrite(p, AsSpan(PageOf(static_cast<std::uint8_t>(p)))).ok());
    }
    // Decay on every replica but the last: a quorum winner always exists.
    DiskFaultPlan storm;
    storm.decay_on_read_probability = 0.02;
    for (std::uint32_t r = 0; r + 1 < n; ++r) {
      store.SetReplicaFaultPlan(r, storm);
    }
    ReplicaRepairConfig repair_config;
    repair_config.scrub_pages_per_pass = 64;
    // Passes are driven inline between batches of commit traffic rather than
    // from the background thread: the measured window then deterministically
    // includes the repair work the storm induces, independent of how the
    // scheduler happens to slice a short run.
    ReplicaRepairService service(&store, repair_config);
    Rng rng(9);
    state.ResumeTiming();

    for (int i = 0; i < kStormOps; ++i) {
      std::size_t page = rng.NextBelow(kStormPages);
      if (rng.NextBool(0.3)) {
        ARGUS_CHECK(store.AtomicWrite(page, AsSpan(PageOf(static_cast<std::uint8_t>(i)))).ok());
      } else {
        Result<std::vector<std::byte>> r = store.AtomicRead(page);
        ARGUS_CHECK(r.ok());
      }
      if (repair_on && (i + 1) % 250 == 0) {
        ARGUS_CHECK(service.RunPass().ok());
      }
    }

    state.PauseTiming();
    ReplicaRepairStats stats = service.StatsSnapshot();
    copies_healed += stats.copies_written;
    passes += stats.passes;
    ops += kStormOps;
    // The storm must always be healable: clear the plans, scrub, converge.
    for (std::uint32_t r = 0; r < n; ++r) {
      store.SetReplicaFaultPlan(r, DiskFaultPlan{});
    }
    ARGUS_CHECK(store.ScrubRange(0, store.page_count()).ok());
    ARGUS_CHECK(store.VerifyConverged().ok());
    state.ResumeTiming();
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["ops_per_s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.counters["copies_healed"] =
      benchmark::Counter(static_cast<double>(copies_healed) / iters);
  state.counters["repair_passes"] = benchmark::Counter(static_cast<double>(passes) / iters);
}

void BM_RepairStormHealed(benchmark::State& state) { RunRepairStorm(state, true); }
void BM_RepairStormUnhealed(benchmark::State& state) { RunRepairStorm(state, false); }

BENCHMARK(BM_RepairStormHealed)->Arg(2)->Arg(3)->Arg(5)->Iterations(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RepairStormUnhealed)->Arg(2)->Arg(3)->Arg(5)->Iterations(3)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// 2. Online re-silver: measured window = blank replica -> fully silvered,
//    with a mutator committing the whole time
// ---------------------------------------------------------------------------

constexpr std::size_t kResilverPages = 1024;

void BM_OnlineResilver(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t writes_during = 0;
  std::uint64_t resilver_copies = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ReplicatedStore store(kResilverPages, n, 11);
    for (std::size_t p = 0; p < kResilverPages; ++p) {
      ARGUS_CHECK(store.AtomicWrite(p, AsSpan(PageOf(static_cast<std::uint8_t>(p)))).ok());
    }
    ReplicaRepairConfig repair_config;
    repair_config.scrub_pages_per_pass = 128;
    ReplicaRepairService service(&store, repair_config);  // driven inline below
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> mutator_writes{0};
    std::thread mutator([&] {
      Rng rng(13);
      while (!stop.load(std::memory_order_relaxed)) {
        std::size_t page = rng.NextBelow(kResilverPages);
        ARGUS_CHECK(store.AtomicWrite(page, AsSpan(PageOf(0xee))).ok());
        mutator_writes.fetch_add(1, std::memory_order_relaxed);
      }
    });
    state.ResumeTiming();

    store.ReplaceReplica(0, 4242);
    // Baseline after the swap: the replacement disk starts with a zeroed
    // write counter, so a pre-swap snapshot would double-count the old
    // replica's history (and underflow the delta).
    const std::uint64_t before = store.physical_writes();
    while (store.resilver_pending()) {
      ARGUS_CHECK(service.RunPass().ok());
    }

    state.PauseTiming();
    stop = true;
    mutator.join();
    writes_during += mutator_writes.load();
    resilver_copies += store.physical_writes() - before;
    ARGUS_CHECK(store.ScrubRange(0, store.page_count()).ok());
    ARGUS_CHECK(store.VerifyConverged().ok());
    state.ResumeTiming();
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["pages"] = benchmark::Counter(static_cast<double>(kResilverPages));
  state.counters["mutator_writes_during"] =
      benchmark::Counter(static_cast<double>(writes_during) / iters);
  state.counters["physical_writes_in_window"] =
      benchmark::Counter(static_cast<double>(resilver_copies) / iters);
}

BENCHMARK(BM_OnlineResilver)->Arg(2)->Arg(3)->Arg(5)->Iterations(3)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// 3. Full stack: the always-on repair service's overhead on healthy media
// ---------------------------------------------------------------------------

constexpr std::size_t kWorkloadActions = 150;

void BM_WorkloadWithRepair(benchmark::State& state) {
  const bool repair_on = state.range(0) != 0;
  std::uint64_t committed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimWorldConfig world_config;
    world_config.guardian_count = 2;
    world_config.mode = LogMode::kHybrid;
    world_config.medium = MediumKind::kReplicated;
    world_config.replicas = 3;
    if (repair_on) {
      world_config.repair = ReplicaRepairConfig{};
    }
    world_config.seed = 7;
    world_config.group_commit = FlushCoordinatorConfig{};
    SimWorld world(world_config);
    WorkloadConfig config;
    config.seed = 7;
    config.threads = 3;
    config.abort_probability = 0.05;
    WorkloadDriver driver(&world, config);
    Status s = driver.Setup();
    ARGUS_CHECK(s.ok());
    state.ResumeTiming();

    s = driver.Run(kWorkloadActions);
    ARGUS_CHECK(s.ok());

    state.PauseTiming();
    committed += driver.stats().committed;
    state.ResumeTiming();
  }
  state.counters["actions_per_s"] =
      benchmark::Counter(static_cast<double>(committed), benchmark::Counter::kIsRate);
}

// Arg: 1 = background repair service on, 0 = off (baseline).
BENCHMARK(BM_WorkloadWithRepair)->Arg(0)->Arg(1)->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_replica_repair)
