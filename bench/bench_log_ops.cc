// Experiment E6 — stable-log operation costs (§3.1, §1.1).
//
// write vs force_write (force batches all older staged entries — group
// commit), backward/forward scan rates, and the ~2x physical write
// amplification of the duplexed Lampson-Sturgis medium.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/common/crc32.h"
#include "src/log/stable_log.h"
#include "src/obs/metrics.h"
#include "src/stable/duplexed_medium.h"
#include "src/stable/stable_medium.h"

namespace argus {
namespace {

DataEntry MakeEntry(std::size_t size) {
  DataEntry e;
  e.kind = ObjectKind::kAtomic;
  e.value = std::vector<std::byte>(size, std::byte{0x5a});
  return e;
}

void BM_StagedWrite(benchmark::State& state) {
  StableLog log(std::make_unique<InMemoryStableMedium>());
  LogEntry entry(MakeEntry(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Write(entry));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * state.range(0)));
}
BENCHMARK(BM_StagedWrite)->Arg(64)->Arg(512)->Arg(4096);

void BM_ForceWriteEveryEntry(benchmark::State& state) {
  StableLog log(std::make_unique<InMemoryStableMedium>());
  LogEntry entry(MakeEntry(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    Result<LogAddress> r = log.ForceWrite(entry);
    ARGUS_CHECK(r.ok());
  }
  state.counters["forces"] = benchmark::Counter(static_cast<double>(log.stats().forces));
}
BENCHMARK(BM_ForceWriteEveryEntry)->Arg(64)->Arg(512);

// Group commit: N staged writes then one force. Forces/entry drops with the
// batch size — why §3.1 defines force_write to flush older entries.
void BM_GroupCommit(benchmark::State& state) {
  StableLog log(std::make_unique<InMemoryStableMedium>());
  LogEntry entry(MakeEntry(128));
  std::int64_t batch = state.range(0);
  for (auto _ : state) {
    for (std::int64_t i = 0; i + 1 < batch; ++i) {
      log.Write(entry);
    }
    Result<LogAddress> r = log.ForceWrite(entry);
    ARGUS_CHECK(r.ok());
  }
  state.counters["forces/entry"] =
      benchmark::Counter(1.0 / static_cast<double>(batch));
}
BENCHMARK(BM_GroupCommit)->Arg(1)->Arg(8)->Arg(64);

void BM_BackwardScan(benchmark::State& state) {
  StableLog log(std::make_unique<InMemoryStableMedium>());
  LogEntry entry(MakeEntry(128));
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    log.Write(entry);
  }
  ARGUS_CHECK(log.Force().ok());
  for (auto _ : state) {
    StableLog::BackwardCursor cursor = log.ReadBackwardFromTop();
    std::size_t n = 0;
    while (true) {
      auto next = cursor.Next();
      ARGUS_CHECK(next.ok());
      if (!next.value().has_value()) {
        break;
      }
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.counters["entries"] = benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_BackwardScan)->Arg(1024)->Arg(8192)->Unit(benchmark::kMicrosecond);

void BM_ForwardScan(benchmark::State& state) {
  StableLog log(std::make_unique<InMemoryStableMedium>());
  LogEntry entry(MakeEntry(128));
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    log.Write(entry);
  }
  ARGUS_CHECK(log.Force().ok());
  for (auto _ : state) {
    StableLog::ForwardCursor cursor = log.ReadForwardFrom(0);
    std::size_t n = 0;
    while (true) {
      auto next = cursor.Next();
      ARGUS_CHECK(next.ok());
      if (!next.value().has_value()) {
        break;
      }
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_ForwardScan)->Arg(1024)->Arg(8192)->Unit(benchmark::kMicrosecond);

// Observability overhead on the hottest log path: the same staged-write loop
// with the metrics registry runtime-enabled (the default everywhere) vs
// runtime-disabled. The instrumented path costs one relaxed flag load plus a
// handful of relaxed counter adds per op; the acceptance budget for
// enabled-vs-disabled is ≤5%. Compare ObsEnabled/ObsDisabled rows directly.
void BM_StagedWriteObsEnabled(benchmark::State& state) {
  bool prev = obs::SetEnabled(true);
  {
    StableLog log(std::make_unique<InMemoryStableMedium>());
    LogEntry entry(MakeEntry(static_cast<std::size_t>(state.range(0))));
    for (auto _ : state) {
      benchmark::DoNotOptimize(log.Write(entry));
    }
  }
  obs::SetEnabled(prev);
}
BENCHMARK(BM_StagedWriteObsEnabled)->Arg(128);

void BM_StagedWriteObsDisabled(benchmark::State& state) {
  bool prev = obs::SetEnabled(false);
  {
    StableLog log(std::make_unique<InMemoryStableMedium>());
    LogEntry entry(MakeEntry(static_cast<std::size_t>(state.range(0))));
    for (auto _ : state) {
      benchmark::DoNotOptimize(log.Write(entry));
    }
  }
  obs::SetEnabled(prev);
}
BENCHMARK(BM_StagedWriteObsDisabled)->Arg(128);

void BM_GroupCommitObsEnabled(benchmark::State& state) {
  bool prev = obs::SetEnabled(true);
  {
    StableLog log(std::make_unique<InMemoryStableMedium>());
    LogEntry entry(MakeEntry(128));
    for (auto _ : state) {
      for (int i = 0; i < 7; ++i) {
        log.Write(entry);
      }
      Result<LogAddress> r = log.ForceWrite(entry);
      ARGUS_CHECK(r.ok());
    }
  }
  obs::SetEnabled(prev);
}
BENCHMARK(BM_GroupCommitObsEnabled);

void BM_GroupCommitObsDisabled(benchmark::State& state) {
  bool prev = obs::SetEnabled(false);
  {
    StableLog log(std::make_unique<InMemoryStableMedium>());
    LogEntry entry(MakeEntry(128));
    for (auto _ : state) {
      for (int i = 0; i < 7; ++i) {
        log.Write(entry);
      }
      Result<LogAddress> r = log.ForceWrite(entry);
      ARGUS_CHECK(r.ok());
    }
  }
  obs::SetEnabled(prev);
}
BENCHMARK(BM_GroupCommitObsDisabled);

// CRC dispatch, paired before/after rows: the same forced-write loop (every
// frame CRC'd on write, re-CRC'd by the duplexed page store) under the
// portable slice-by-8 kernel vs the hardware (PCLMULQDQ / ARMv8 CRC32)
// fast path. On a machine without the instructions the two rows coincide —
// kHardware silently degrades to slice-by-8.
void RunForcedWritesWithImpl(benchmark::State& state, Crc32Impl impl) {
  Crc32Impl prev = GetCrc32Impl();
  SetCrc32Impl(impl);
  {
    StableLog log(std::make_unique<DuplexedStableMedium>());
    LogEntry entry(MakeEntry(static_cast<std::size_t>(state.range(0))));
    for (auto _ : state) {
      Result<LogAddress> r = log.ForceWrite(entry);
      ARGUS_CHECK(r.ok());
    }
  }
  SetCrc32Impl(prev);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * state.range(0)));
  state.counters["hw_available"] =
      benchmark::Counter(Crc32HardwareAvailable() ? 1.0 : 0.0);
}

void BM_ForceWriteCrcSliceBy8(benchmark::State& state) {
  RunForcedWritesWithImpl(state, Crc32Impl::kSliceBy8);
}
BENCHMARK(BM_ForceWriteCrcSliceBy8)->Arg(512)->Arg(4096);

void BM_ForceWriteCrcHardware(benchmark::State& state) {
  RunForcedWritesWithImpl(state, Crc32Impl::kHardware);
}
BENCHMARK(BM_ForceWriteCrcHardware)->Arg(512)->Arg(4096);

// Duplexed medium: physical bytes per logical byte (§1.1 — "the extra memory
// and I/O involved in maintaining a second copy").
void BM_DuplexedAmplification(benchmark::State& state) {
  std::size_t logical = 0;
  std::uint64_t physical = 0;
  for (auto _ : state) {
    StableLog log(std::make_unique<DuplexedStableMedium>());
    LogEntry entry(MakeEntry(static_cast<std::size_t>(state.range(0))));
    for (int i = 0; i < 32; ++i) {
      Result<LogAddress> r = log.ForceWrite(entry);
      ARGUS_CHECK(r.ok());
    }
    logical = log.durable_size();
    physical = log.medium().physical_bytes_written();
  }
  state.counters["amplification"] =
      benchmark::Counter(static_cast<double>(physical) / static_cast<double>(logical));
}
BENCHMARK(BM_DuplexedAmplification)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_log_ops)
