// Experiment E9 — group commit under concurrent guardians.
//
// Measures commits/sec and physical log forces as the number of client
// threads grows (1..16), with and without the flush coordinator. The claim
// under test: §3.1's force_write contract (forcing one entry flushes every
// older staged entry) lets N concurrent actions share one physical flush, so
// physical forces grow sublinearly in committed actions while throughput
// scales. Run with --benchmark_format=json for machine-readable output.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

#include "src/tpc/workload.h"

namespace argus {
namespace {

constexpr std::size_t kActionsPerIteration = 256;

void RunGroupCommit(benchmark::State& state, MediumKind medium) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const bool grouped = state.range(1) != 0;

  SimWorldConfig world_config;
  world_config.guardian_count = 1;  // one log: the contended resource
  world_config.mode = LogMode::kHybrid;
  world_config.medium = medium;
  world_config.seed = 47;
  if (grouped) {
    FlushCoordinatorConfig gc;
    // Linger briefly so followers can stage; stop early once every client
    // thread has a request pending.
    gc.batch_window = std::chrono::microseconds(100);
    gc.max_batch = threads;
    world_config.group_commit = gc;
  }
  SimWorld world(world_config);

  WorkloadConfig config;
  config.seed = 47;
  config.abort_probability = 0.0;
  config.threads = threads;
  WorkloadDriver driver(&world, config);
  Status s = driver.Setup();
  ARGUS_CHECK(s.ok());

  for (auto _ : state) {
    s = driver.Run(kActionsPerIteration);
    ARGUS_CHECK(s.ok());
  }

  const LogStats log_stats = world.guardian(0u).recovery().log().StatsSnapshot();
  state.counters["commits"] = benchmark::Counter(static_cast<double>(driver.stats().committed),
                                                 benchmark::Counter::kIsRate);
  state.counters["forces"] = benchmark::Counter(static_cast<double>(log_stats.forces));
  state.counters["entries_per_force"] = benchmark::Counter(log_stats.entries_per_force());
  state.counters["commits_per_force"] = benchmark::Counter(
      log_stats.forces == 0 ? 0.0
                            : static_cast<double>(driver.stats().committed) /
                                  static_cast<double>(log_stats.forces));
  state.counters["coalesced_share"] = benchmark::Counter(
      log_stats.force_requests == 0 ? 0.0
                                    : static_cast<double>(log_stats.coalesced_requests) /
                                          static_cast<double>(log_stats.force_requests));
  state.counters["avg_force_wait_us"] = benchmark::Counter(
      log_stats.force_requests == 0 ? 0.0
                                    : static_cast<double>(log_stats.total_force_wait_ns) / 1e3 /
                                          static_cast<double>(log_stats.force_requests));
}

void BM_GroupCommitInMemory(benchmark::State& state) {
  RunGroupCommit(state, MediumKind::kInMemory);
}
void BM_GroupCommitDuplexed(benchmark::State& state) {
  RunGroupCommit(state, MediumKind::kDuplexed);
}

void ThreadSweep(benchmark::internal::Benchmark* b) {
  b->ArgNames({"threads", "grouped"});
  for (std::int64_t threads : {1, 2, 4, 8, 16}) {
    b->Args({threads, 0});
    b->Args({threads, 1});
  }
  b->Unit(benchmark::kMillisecond)->UseRealTime();
}

BENCHMARK(BM_GroupCommitInMemory)->Apply(ThreadSweep);
BENCHMARK(BM_GroupCommitDuplexed)->Apply(ThreadSweep);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_group_commit)
