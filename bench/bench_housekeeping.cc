// Experiment E3 — housekeeping cost (§5.3).
//
// Claim: "the snapshot takes an amount of time roughly proportional to the
// number of accessible recoverable objects; the compaction method would take
// much longer since it must process all outcome entries as well as all
// accessible objects."
//
// Two sweeps: (a) fixed live set, growing history — compaction cost grows,
// snapshot cost stays flat; (b) fixed history, growing live set — both grow.

#include <benchmark/benchmark.h>

#include "bench/bench_support.h"

namespace argus {
namespace {

constexpr std::size_t kValueSize = 64;
constexpr std::size_t kWritesPerAction = 4;

void RunHousekeepingSweep(benchmark::State& state, HousekeepingMethod method,
                          bool sweep_history) {
  std::size_t live = sweep_history ? 32 : static_cast<std::size_t>(state.range(0));
  std::size_t history = sweep_history ? static_cast<std::size_t>(state.range(0)) : 512;

  std::uint64_t processed = 0;
  std::uint64_t new_entries = 0;
  std::uint64_t checkpointed = 0;
  std::uint64_t old_cache_hits = 0;
  std::uint64_t old_cache_misses = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchGuardian guardian(LogMode::kHybrid, live, kValueSize);
    Rng rng(5);
    for (std::size_t i = 0; i < history; ++i) {
      guardian.CommitAction(rng, kWritesPerAction);
    }
    // The pre-swap log: stage 1's replay reads (ReadOldData) tick ITS cache
    // counters, and the recovery system keeps it alive one generation after
    // the swap, so its stats are still readable after Housekeep returns.
    const StableLog* old_log = &guardian.rs().log();
    state.ResumeTiming();
    Status s = guardian.rs().Housekeep(method);
    ARGUS_CHECK(s.ok());
    state.PauseTiming();
    processed = 0;  // stats live in the housekeeper; re-derive coarse counters
    new_entries = guardian.rs().log().stats().entries_written;
    checkpointed = guardian.rs().log().durable_size();
    LogStats old_stats = old_log->StatsSnapshot();
    old_cache_hits += old_stats.cache_hits;
    old_cache_misses += old_stats.cache_misses;
    state.ResumeTiming();
  }
  state.counters["new_log_entries"] = benchmark::Counter(static_cast<double>(new_entries));
  state.counters["new_log_bytes"] = benchmark::Counter(static_cast<double>(checkpointed));
  std::uint64_t old_reads = old_cache_hits + old_cache_misses;
  state.counters["old_log_cache_hit_rate"] = benchmark::Counter(
      old_reads == 0 ? 0.0
                     : static_cast<double>(old_cache_hits) / static_cast<double>(old_reads));
  (void)processed;
}

void BM_CompactionByHistory(benchmark::State& state) {
  RunHousekeepingSweep(state, HousekeepingMethod::kCompaction, true);
}
void BM_SnapshotByHistory(benchmark::State& state) {
  RunHousekeepingSweep(state, HousekeepingMethod::kSnapshot, true);
}
void BM_CompactionByLiveSet(benchmark::State& state) {
  RunHousekeepingSweep(state, HousekeepingMethod::kCompaction, false);
}
void BM_SnapshotByLiveSet(benchmark::State& state) {
  RunHousekeepingSweep(state, HousekeepingMethod::kSnapshot, false);
}

// Iterations are capped explicitly: each iteration rebuilds the whole
// history outside the timed region, which dominates wall-clock if
// google-benchmark is left to chase its min_time on the (cheap) timed part.
BENCHMARK(BM_CompactionByHistory)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotByHistory)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CompactionByLiveSet)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotByLiveSet)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Iterations(5)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace argus

ARGUS_BENCH_MAIN(bench_housekeeping)
