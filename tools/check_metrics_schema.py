#!/usr/bin/env python3
"""Schema check for argus.metrics.v1 snapshots (BENCH_*.metrics.json).

Usage: check_metrics_schema.py [--require PREFIX]... FILE [FILE...]

Validates the shape every bench emits via --json (see bench/bench_support.h
and src/obs/metrics.h Registry::ToJson): a single JSON object with the schema
marker, string->int counters, string->number gauges, and histograms whose
entries carry count/sum/max/p50/p99/p999 plus [upper_bound, count] bucket
pairs. Exits non-zero naming the first offending file and field.

Each --require PREFIX additionally demands that at least one counter, gauge,
or histogram name starts with PREFIX in every checked file (e.g.
`--require residency.` asserts the residency subsystem actually exported its
metrics rather than silently registering nothing).

Stdlib only — CI runs it with a bare python3.
"""

import json
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_histogram(path, name, h):
    if not isinstance(h, dict):
        fail(path, f"histogram {name!r} is not an object")
    for field in ("count", "sum", "max", "p50", "p99", "p999"):
        if not isinstance(h.get(field), int) or h[field] < 0:
            fail(path, f"histogram {name!r} field {field!r} missing or not a non-negative int")
    buckets = h.get("buckets")
    if not isinstance(buckets, list):
        fail(path, f"histogram {name!r} has no buckets array")
    total = 0
    last_upper = -1
    for pair in buckets:
        if (not isinstance(pair, list) or len(pair) != 2
                or not all(isinstance(v, int) and v >= 0 for v in pair)):
            fail(path, f"histogram {name!r} bucket {pair!r} is not [upper, count]")
        upper, count = pair
        if upper <= last_upper:
            fail(path, f"histogram {name!r} bucket bounds not strictly increasing")
        last_upper = upper
        total += count
    if total != h["count"]:
        fail(path, f"histogram {name!r} bucket counts sum to {total}, count says {h['count']}")


def check_file(path, required_prefixes=()):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(path, f"unreadable or invalid JSON: {e}")
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != "argus.metrics.v1":
        fail(path, f"schema marker is {doc.get('schema')!r}, want 'argus.metrics.v1'")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(path, f"missing {section!r} object")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(path, f"counter {name!r} is not a non-negative int")
    for name, value in doc["gauges"].items():
        if not isinstance(value, (int, float)):
            fail(path, f"gauge {name!r} is not a number")
    for name, h in doc["histograms"].items():
        check_histogram(path, name, h)
    all_names = (list(doc["counters"]) + list(doc["gauges"])
                 + list(doc["histograms"]))
    for prefix in required_prefixes:
        if not any(name.startswith(prefix) for name in all_names):
            fail(path, f"no counter/gauge/histogram named {prefix!r}*")
    print(f"{path}: ok ({len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
          f"{len(doc['histograms'])} histograms)")


def main(argv):
    required = []
    args = []
    i = 1
    while i < len(argv):
        if argv[i] == "--require":
            if i + 1 >= len(argv):
                print("--require needs a PREFIX argument", file=sys.stderr)
                return 2
            required.append(argv[i + 1])
            i += 2
        elif argv[i].startswith("--require="):
            required.append(argv[i].split("=", 1)[1])
            i += 1
        else:
            args.append(argv[i])
            i += 1
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    for path in args:
        check_file(path, required)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
