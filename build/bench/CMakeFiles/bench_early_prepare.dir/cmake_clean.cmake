file(REMOVE_RECURSE
  "CMakeFiles/bench_early_prepare.dir/bench_early_prepare.cc.o"
  "CMakeFiles/bench_early_prepare.dir/bench_early_prepare.cc.o.d"
  "bench_early_prepare"
  "bench_early_prepare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_early_prepare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
