# Empty compiler generated dependencies file for bench_early_prepare.
# This may be replaced when dependencies are built.
