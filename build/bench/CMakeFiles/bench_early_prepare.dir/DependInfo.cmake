
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_early_prepare.cc" "bench/CMakeFiles/bench_early_prepare.dir/bench_early_prepare.cc.o" "gcc" "bench/CMakeFiles/bench_early_prepare.dir/bench_early_prepare.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/argus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stable/CMakeFiles/argus_stable.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/argus_log.dir/DependInfo.cmake"
  "/root/repo/build/src/object/CMakeFiles/argus_object.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/argus_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/argus_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/tpc/CMakeFiles/argus_tpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
