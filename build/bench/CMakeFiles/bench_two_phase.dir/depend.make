# Empty dependencies file for bench_two_phase.
# This may be replaced when dependencies are built.
