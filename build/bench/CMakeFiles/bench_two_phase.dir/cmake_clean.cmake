file(REMOVE_RECURSE
  "CMakeFiles/bench_two_phase.dir/bench_two_phase.cc.o"
  "CMakeFiles/bench_two_phase.dir/bench_two_phase.cc.o.d"
  "bench_two_phase"
  "bench_two_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
