file(REMOVE_RECURSE
  "CMakeFiles/bench_recovery_after_housekeeping.dir/bench_recovery_after_housekeeping.cc.o"
  "CMakeFiles/bench_recovery_after_housekeeping.dir/bench_recovery_after_housekeeping.cc.o.d"
  "bench_recovery_after_housekeeping"
  "bench_recovery_after_housekeeping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_after_housekeeping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
