# Empty dependencies file for bench_recovery_after_housekeeping.
# This may be replaced when dependencies are built.
