file(REMOVE_RECURSE
  "CMakeFiles/bench_housekeeping.dir/bench_housekeeping.cc.o"
  "CMakeFiles/bench_housekeeping.dir/bench_housekeeping.cc.o.d"
  "bench_housekeeping"
  "bench_housekeeping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_housekeeping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
