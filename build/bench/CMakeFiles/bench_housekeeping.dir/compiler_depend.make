# Empty compiler generated dependencies file for bench_housekeeping.
# This may be replaced when dependencies are built.
