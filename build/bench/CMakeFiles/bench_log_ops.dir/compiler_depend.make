# Empty compiler generated dependencies file for bench_log_ops.
# This may be replaced when dependencies are built.
