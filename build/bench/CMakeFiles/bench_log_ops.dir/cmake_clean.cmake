file(REMOVE_RECURSE
  "CMakeFiles/bench_log_ops.dir/bench_log_ops.cc.o"
  "CMakeFiles/bench_log_ops.dir/bench_log_ops.cc.o.d"
  "bench_log_ops"
  "bench_log_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_log_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
