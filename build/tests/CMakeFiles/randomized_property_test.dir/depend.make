# Empty dependencies file for randomized_property_test.
# This may be replaced when dependencies are built.
