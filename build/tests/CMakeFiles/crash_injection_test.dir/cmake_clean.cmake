file(REMOVE_RECURSE
  "CMakeFiles/crash_injection_test.dir/crash_injection_test.cc.o"
  "CMakeFiles/crash_injection_test.dir/crash_injection_test.cc.o.d"
  "crash_injection_test"
  "crash_injection_test.pdb"
  "crash_injection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
