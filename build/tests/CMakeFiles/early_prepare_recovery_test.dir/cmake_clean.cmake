file(REMOVE_RECURSE
  "CMakeFiles/early_prepare_recovery_test.dir/early_prepare_recovery_test.cc.o"
  "CMakeFiles/early_prepare_recovery_test.dir/early_prepare_recovery_test.cc.o.d"
  "early_prepare_recovery_test"
  "early_prepare_recovery_test.pdb"
  "early_prepare_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_prepare_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
