# Empty compiler generated dependencies file for early_prepare_recovery_test.
# This may be replaced when dependencies are built.
