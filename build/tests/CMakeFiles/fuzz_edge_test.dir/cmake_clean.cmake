file(REMOVE_RECURSE
  "CMakeFiles/fuzz_edge_test.dir/fuzz_edge_test.cc.o"
  "CMakeFiles/fuzz_edge_test.dir/fuzz_edge_test.cc.o.d"
  "fuzz_edge_test"
  "fuzz_edge_test.pdb"
  "fuzz_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
