file(REMOVE_RECURSE
  "CMakeFiles/debug_dump_test.dir/debug_dump_test.cc.o"
  "CMakeFiles/debug_dump_test.dir/debug_dump_test.cc.o.d"
  "debug_dump_test"
  "debug_dump_test.pdb"
  "debug_dump_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_dump_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
