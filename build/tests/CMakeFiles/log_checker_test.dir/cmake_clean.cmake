file(REMOVE_RECURSE
  "CMakeFiles/log_checker_test.dir/log_checker_test.cc.o"
  "CMakeFiles/log_checker_test.dir/log_checker_test.cc.o.d"
  "log_checker_test"
  "log_checker_test.pdb"
  "log_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
