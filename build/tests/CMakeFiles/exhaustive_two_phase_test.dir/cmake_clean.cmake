file(REMOVE_RECURSE
  "CMakeFiles/exhaustive_two_phase_test.dir/exhaustive_two_phase_test.cc.o"
  "CMakeFiles/exhaustive_two_phase_test.dir/exhaustive_two_phase_test.cc.o.d"
  "exhaustive_two_phase_test"
  "exhaustive_two_phase_test.pdb"
  "exhaustive_two_phase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustive_two_phase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
