# Empty compiler generated dependencies file for exhaustive_two_phase_test.
# This may be replaced when dependencies are built.
