# Empty compiler generated dependencies file for as_trimmer_test.
# This may be replaced when dependencies are built.
