file(REMOVE_RECURSE
  "CMakeFiles/as_trimmer_test.dir/as_trimmer_test.cc.o"
  "CMakeFiles/as_trimmer_test.dir/as_trimmer_test.cc.o.d"
  "as_trimmer_test"
  "as_trimmer_test.pdb"
  "as_trimmer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/as_trimmer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
