file(REMOVE_RECURSE
  "CMakeFiles/value_flatten_test.dir/value_flatten_test.cc.o"
  "CMakeFiles/value_flatten_test.dir/value_flatten_test.cc.o.d"
  "value_flatten_test"
  "value_flatten_test.pdb"
  "value_flatten_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_flatten_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
