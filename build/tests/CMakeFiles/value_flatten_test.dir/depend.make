# Empty dependencies file for value_flatten_test.
# This may be replaced when dependencies are built.
