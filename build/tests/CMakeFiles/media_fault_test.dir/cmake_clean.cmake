file(REMOVE_RECURSE
  "CMakeFiles/media_fault_test.dir/media_fault_test.cc.o"
  "CMakeFiles/media_fault_test.dir/media_fault_test.cc.o.d"
  "media_fault_test"
  "media_fault_test.pdb"
  "media_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
