# Empty compiler generated dependencies file for media_fault_test.
# This may be replaced when dependencies are built.
