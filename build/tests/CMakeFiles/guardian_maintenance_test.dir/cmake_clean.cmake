file(REMOVE_RECURSE
  "CMakeFiles/guardian_maintenance_test.dir/guardian_maintenance_test.cc.o"
  "CMakeFiles/guardian_maintenance_test.dir/guardian_maintenance_test.cc.o.d"
  "guardian_maintenance_test"
  "guardian_maintenance_test.pdb"
  "guardian_maintenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardian_maintenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
