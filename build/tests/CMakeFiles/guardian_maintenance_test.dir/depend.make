# Empty dependencies file for guardian_maintenance_test.
# This may be replaced when dependencies are built.
