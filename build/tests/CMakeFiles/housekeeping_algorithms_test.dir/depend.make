# Empty dependencies file for housekeeping_algorithms_test.
# This may be replaced when dependencies are built.
