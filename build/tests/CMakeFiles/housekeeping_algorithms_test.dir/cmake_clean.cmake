file(REMOVE_RECURSE
  "CMakeFiles/housekeeping_algorithms_test.dir/housekeeping_algorithms_test.cc.o"
  "CMakeFiles/housekeeping_algorithms_test.dir/housekeeping_algorithms_test.cc.o.d"
  "housekeeping_algorithms_test"
  "housekeeping_algorithms_test.pdb"
  "housekeeping_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/housekeeping_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
