# Empty dependencies file for hybrid_recovery_test.
# This may be replaced when dependencies are built.
