file(REMOVE_RECURSE
  "CMakeFiles/hybrid_recovery_test.dir/hybrid_recovery_test.cc.o"
  "CMakeFiles/hybrid_recovery_test.dir/hybrid_recovery_test.cc.o.d"
  "hybrid_recovery_test"
  "hybrid_recovery_test.pdb"
  "hybrid_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
