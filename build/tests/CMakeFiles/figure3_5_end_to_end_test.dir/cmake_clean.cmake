file(REMOVE_RECURSE
  "CMakeFiles/figure3_5_end_to_end_test.dir/figure3_5_end_to_end_test.cc.o"
  "CMakeFiles/figure3_5_end_to_end_test.dir/figure3_5_end_to_end_test.cc.o.d"
  "figure3_5_end_to_end_test"
  "figure3_5_end_to_end_test.pdb"
  "figure3_5_end_to_end_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_5_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
