# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for figure3_5_end_to_end_test.
