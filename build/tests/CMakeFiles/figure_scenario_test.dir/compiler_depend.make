# Empty compiler generated dependencies file for figure_scenario_test.
# This may be replaced when dependencies are built.
