file(REMOVE_RECURSE
  "CMakeFiles/figure_scenario_test.dir/figure_scenario_test.cc.o"
  "CMakeFiles/figure_scenario_test.dir/figure_scenario_test.cc.o.d"
  "figure_scenario_test"
  "figure_scenario_test.pdb"
  "figure_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
