file(REMOVE_RECURSE
  "CMakeFiles/recovery_simple_test.dir/recovery_simple_test.cc.o"
  "CMakeFiles/recovery_simple_test.dir/recovery_simple_test.cc.o.d"
  "recovery_simple_test"
  "recovery_simple_test.pdb"
  "recovery_simple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_simple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
