# Empty compiler generated dependencies file for recovery_simple_test.
# This may be replaced when dependencies are built.
