file(REMOVE_RECURSE
  "CMakeFiles/guardian_protocol_test.dir/guardian_protocol_test.cc.o"
  "CMakeFiles/guardian_protocol_test.dir/guardian_protocol_test.cc.o.d"
  "guardian_protocol_test"
  "guardian_protocol_test.pdb"
  "guardian_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardian_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
