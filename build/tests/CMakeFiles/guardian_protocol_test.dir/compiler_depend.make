# Empty compiler generated dependencies file for guardian_protocol_test.
# This may be replaced when dependencies are built.
