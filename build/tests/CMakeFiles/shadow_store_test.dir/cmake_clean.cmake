file(REMOVE_RECURSE
  "CMakeFiles/shadow_store_test.dir/shadow_store_test.cc.o"
  "CMakeFiles/shadow_store_test.dir/shadow_store_test.cc.o.d"
  "shadow_store_test"
  "shadow_store_test.pdb"
  "shadow_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
