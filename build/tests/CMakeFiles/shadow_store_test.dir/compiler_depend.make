# Empty compiler generated dependencies file for shadow_store_test.
# This may be replaced when dependencies are built.
