# Empty dependencies file for workload_stress_test.
# This may be replaced when dependencies are built.
