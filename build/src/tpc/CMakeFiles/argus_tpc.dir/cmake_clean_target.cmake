file(REMOVE_RECURSE
  "libargus_tpc.a"
)
