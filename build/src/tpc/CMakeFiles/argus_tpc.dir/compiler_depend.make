# Empty compiler generated dependencies file for argus_tpc.
# This may be replaced when dependencies are built.
