file(REMOVE_RECURSE
  "CMakeFiles/argus_tpc.dir/guardian.cc.o"
  "CMakeFiles/argus_tpc.dir/guardian.cc.o.d"
  "CMakeFiles/argus_tpc.dir/messages.cc.o"
  "CMakeFiles/argus_tpc.dir/messages.cc.o.d"
  "CMakeFiles/argus_tpc.dir/network.cc.o"
  "CMakeFiles/argus_tpc.dir/network.cc.o.d"
  "CMakeFiles/argus_tpc.dir/sim_world.cc.o"
  "CMakeFiles/argus_tpc.dir/sim_world.cc.o.d"
  "CMakeFiles/argus_tpc.dir/workload.cc.o"
  "CMakeFiles/argus_tpc.dir/workload.cc.o.d"
  "libargus_tpc.a"
  "libargus_tpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_tpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
