file(REMOVE_RECURSE
  "CMakeFiles/argus_shadow.dir/shadow_store.cc.o"
  "CMakeFiles/argus_shadow.dir/shadow_store.cc.o.d"
  "libargus_shadow.a"
  "libargus_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
