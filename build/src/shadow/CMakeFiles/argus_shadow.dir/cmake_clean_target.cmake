file(REMOVE_RECURSE
  "libargus_shadow.a"
)
