# Empty dependencies file for argus_shadow.
# This may be replaced when dependencies are built.
