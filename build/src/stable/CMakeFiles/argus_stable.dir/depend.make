# Empty dependencies file for argus_stable.
# This may be replaced when dependencies are built.
