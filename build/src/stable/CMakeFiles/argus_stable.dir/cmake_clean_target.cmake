file(REMOVE_RECURSE
  "libargus_stable.a"
)
