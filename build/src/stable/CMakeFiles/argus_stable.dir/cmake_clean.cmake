file(REMOVE_RECURSE
  "CMakeFiles/argus_stable.dir/careful_disk.cc.o"
  "CMakeFiles/argus_stable.dir/careful_disk.cc.o.d"
  "CMakeFiles/argus_stable.dir/duplexed_medium.cc.o"
  "CMakeFiles/argus_stable.dir/duplexed_medium.cc.o.d"
  "CMakeFiles/argus_stable.dir/duplexed_store.cc.o"
  "CMakeFiles/argus_stable.dir/duplexed_store.cc.o.d"
  "CMakeFiles/argus_stable.dir/file_medium.cc.o"
  "CMakeFiles/argus_stable.dir/file_medium.cc.o.d"
  "CMakeFiles/argus_stable.dir/simulated_disk.cc.o"
  "CMakeFiles/argus_stable.dir/simulated_disk.cc.o.d"
  "libargus_stable.a"
  "libargus_stable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_stable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
