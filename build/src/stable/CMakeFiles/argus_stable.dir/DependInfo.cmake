
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stable/careful_disk.cc" "src/stable/CMakeFiles/argus_stable.dir/careful_disk.cc.o" "gcc" "src/stable/CMakeFiles/argus_stable.dir/careful_disk.cc.o.d"
  "/root/repo/src/stable/duplexed_medium.cc" "src/stable/CMakeFiles/argus_stable.dir/duplexed_medium.cc.o" "gcc" "src/stable/CMakeFiles/argus_stable.dir/duplexed_medium.cc.o.d"
  "/root/repo/src/stable/duplexed_store.cc" "src/stable/CMakeFiles/argus_stable.dir/duplexed_store.cc.o" "gcc" "src/stable/CMakeFiles/argus_stable.dir/duplexed_store.cc.o.d"
  "/root/repo/src/stable/file_medium.cc" "src/stable/CMakeFiles/argus_stable.dir/file_medium.cc.o" "gcc" "src/stable/CMakeFiles/argus_stable.dir/file_medium.cc.o.d"
  "/root/repo/src/stable/simulated_disk.cc" "src/stable/CMakeFiles/argus_stable.dir/simulated_disk.cc.o" "gcc" "src/stable/CMakeFiles/argus_stable.dir/simulated_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/argus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
