file(REMOVE_RECURSE
  "CMakeFiles/argus_object.dir/action_context.cc.o"
  "CMakeFiles/argus_object.dir/action_context.cc.o.d"
  "CMakeFiles/argus_object.dir/flatten.cc.o"
  "CMakeFiles/argus_object.dir/flatten.cc.o.d"
  "CMakeFiles/argus_object.dir/heap.cc.o"
  "CMakeFiles/argus_object.dir/heap.cc.o.d"
  "CMakeFiles/argus_object.dir/recoverable_object.cc.o"
  "CMakeFiles/argus_object.dir/recoverable_object.cc.o.d"
  "CMakeFiles/argus_object.dir/subaction.cc.o"
  "CMakeFiles/argus_object.dir/subaction.cc.o.d"
  "CMakeFiles/argus_object.dir/value.cc.o"
  "CMakeFiles/argus_object.dir/value.cc.o.d"
  "libargus_object.a"
  "libargus_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
