
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/object/action_context.cc" "src/object/CMakeFiles/argus_object.dir/action_context.cc.o" "gcc" "src/object/CMakeFiles/argus_object.dir/action_context.cc.o.d"
  "/root/repo/src/object/flatten.cc" "src/object/CMakeFiles/argus_object.dir/flatten.cc.o" "gcc" "src/object/CMakeFiles/argus_object.dir/flatten.cc.o.d"
  "/root/repo/src/object/heap.cc" "src/object/CMakeFiles/argus_object.dir/heap.cc.o" "gcc" "src/object/CMakeFiles/argus_object.dir/heap.cc.o.d"
  "/root/repo/src/object/recoverable_object.cc" "src/object/CMakeFiles/argus_object.dir/recoverable_object.cc.o" "gcc" "src/object/CMakeFiles/argus_object.dir/recoverable_object.cc.o.d"
  "/root/repo/src/object/subaction.cc" "src/object/CMakeFiles/argus_object.dir/subaction.cc.o" "gcc" "src/object/CMakeFiles/argus_object.dir/subaction.cc.o.d"
  "/root/repo/src/object/value.cc" "src/object/CMakeFiles/argus_object.dir/value.cc.o" "gcc" "src/object/CMakeFiles/argus_object.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/argus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
