# Empty dependencies file for argus_object.
# This may be replaced when dependencies are built.
