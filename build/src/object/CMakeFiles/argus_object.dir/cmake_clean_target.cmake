file(REMOVE_RECURSE
  "libargus_object.a"
)
