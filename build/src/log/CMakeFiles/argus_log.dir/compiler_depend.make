# Empty compiler generated dependencies file for argus_log.
# This may be replaced when dependencies are built.
