file(REMOVE_RECURSE
  "CMakeFiles/argus_log.dir/entry_codec.cc.o"
  "CMakeFiles/argus_log.dir/entry_codec.cc.o.d"
  "CMakeFiles/argus_log.dir/log_checker.cc.o"
  "CMakeFiles/argus_log.dir/log_checker.cc.o.d"
  "CMakeFiles/argus_log.dir/log_entry.cc.o"
  "CMakeFiles/argus_log.dir/log_entry.cc.o.d"
  "CMakeFiles/argus_log.dir/stable_log.cc.o"
  "CMakeFiles/argus_log.dir/stable_log.cc.o.d"
  "libargus_log.a"
  "libargus_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
