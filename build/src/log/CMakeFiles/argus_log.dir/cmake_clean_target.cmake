file(REMOVE_RECURSE
  "libargus_log.a"
)
