
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/entry_codec.cc" "src/log/CMakeFiles/argus_log.dir/entry_codec.cc.o" "gcc" "src/log/CMakeFiles/argus_log.dir/entry_codec.cc.o.d"
  "/root/repo/src/log/log_checker.cc" "src/log/CMakeFiles/argus_log.dir/log_checker.cc.o" "gcc" "src/log/CMakeFiles/argus_log.dir/log_checker.cc.o.d"
  "/root/repo/src/log/log_entry.cc" "src/log/CMakeFiles/argus_log.dir/log_entry.cc.o" "gcc" "src/log/CMakeFiles/argus_log.dir/log_entry.cc.o.d"
  "/root/repo/src/log/stable_log.cc" "src/log/CMakeFiles/argus_log.dir/stable_log.cc.o" "gcc" "src/log/CMakeFiles/argus_log.dir/stable_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/argus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stable/CMakeFiles/argus_stable.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
