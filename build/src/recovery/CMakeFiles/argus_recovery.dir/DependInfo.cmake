
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recovery/as_trimmer.cc" "src/recovery/CMakeFiles/argus_recovery.dir/as_trimmer.cc.o" "gcc" "src/recovery/CMakeFiles/argus_recovery.dir/as_trimmer.cc.o.d"
  "/root/repo/src/recovery/checkpoint_policy.cc" "src/recovery/CMakeFiles/argus_recovery.dir/checkpoint_policy.cc.o" "gcc" "src/recovery/CMakeFiles/argus_recovery.dir/checkpoint_policy.cc.o.d"
  "/root/repo/src/recovery/debug.cc" "src/recovery/CMakeFiles/argus_recovery.dir/debug.cc.o" "gcc" "src/recovery/CMakeFiles/argus_recovery.dir/debug.cc.o.d"
  "/root/repo/src/recovery/housekeeping.cc" "src/recovery/CMakeFiles/argus_recovery.dir/housekeeping.cc.o" "gcc" "src/recovery/CMakeFiles/argus_recovery.dir/housekeeping.cc.o.d"
  "/root/repo/src/recovery/log_writer.cc" "src/recovery/CMakeFiles/argus_recovery.dir/log_writer.cc.o" "gcc" "src/recovery/CMakeFiles/argus_recovery.dir/log_writer.cc.o.d"
  "/root/repo/src/recovery/recovery_algorithms.cc" "src/recovery/CMakeFiles/argus_recovery.dir/recovery_algorithms.cc.o" "gcc" "src/recovery/CMakeFiles/argus_recovery.dir/recovery_algorithms.cc.o.d"
  "/root/repo/src/recovery/recovery_system.cc" "src/recovery/CMakeFiles/argus_recovery.dir/recovery_system.cc.o" "gcc" "src/recovery/CMakeFiles/argus_recovery.dir/recovery_system.cc.o.d"
  "/root/repo/src/recovery/tables.cc" "src/recovery/CMakeFiles/argus_recovery.dir/tables.cc.o" "gcc" "src/recovery/CMakeFiles/argus_recovery.dir/tables.cc.o.d"
  "/root/repo/src/recovery/validate.cc" "src/recovery/CMakeFiles/argus_recovery.dir/validate.cc.o" "gcc" "src/recovery/CMakeFiles/argus_recovery.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/argus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/argus_log.dir/DependInfo.cmake"
  "/root/repo/build/src/object/CMakeFiles/argus_object.dir/DependInfo.cmake"
  "/root/repo/build/src/stable/CMakeFiles/argus_stable.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
