# Empty compiler generated dependencies file for argus_recovery.
# This may be replaced when dependencies are built.
