file(REMOVE_RECURSE
  "CMakeFiles/argus_recovery.dir/as_trimmer.cc.o"
  "CMakeFiles/argus_recovery.dir/as_trimmer.cc.o.d"
  "CMakeFiles/argus_recovery.dir/checkpoint_policy.cc.o"
  "CMakeFiles/argus_recovery.dir/checkpoint_policy.cc.o.d"
  "CMakeFiles/argus_recovery.dir/debug.cc.o"
  "CMakeFiles/argus_recovery.dir/debug.cc.o.d"
  "CMakeFiles/argus_recovery.dir/housekeeping.cc.o"
  "CMakeFiles/argus_recovery.dir/housekeeping.cc.o.d"
  "CMakeFiles/argus_recovery.dir/log_writer.cc.o"
  "CMakeFiles/argus_recovery.dir/log_writer.cc.o.d"
  "CMakeFiles/argus_recovery.dir/recovery_algorithms.cc.o"
  "CMakeFiles/argus_recovery.dir/recovery_algorithms.cc.o.d"
  "CMakeFiles/argus_recovery.dir/recovery_system.cc.o"
  "CMakeFiles/argus_recovery.dir/recovery_system.cc.o.d"
  "CMakeFiles/argus_recovery.dir/tables.cc.o"
  "CMakeFiles/argus_recovery.dir/tables.cc.o.d"
  "CMakeFiles/argus_recovery.dir/validate.cc.o"
  "CMakeFiles/argus_recovery.dir/validate.cc.o.d"
  "libargus_recovery.a"
  "libargus_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
