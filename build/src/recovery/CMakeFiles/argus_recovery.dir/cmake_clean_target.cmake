file(REMOVE_RECURSE
  "libargus_recovery.a"
)
