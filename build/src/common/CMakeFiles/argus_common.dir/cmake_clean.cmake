file(REMOVE_RECURSE
  "CMakeFiles/argus_common.dir/codec.cc.o"
  "CMakeFiles/argus_common.dir/codec.cc.o.d"
  "CMakeFiles/argus_common.dir/crc32.cc.o"
  "CMakeFiles/argus_common.dir/crc32.cc.o.d"
  "CMakeFiles/argus_common.dir/ids.cc.o"
  "CMakeFiles/argus_common.dir/ids.cc.o.d"
  "CMakeFiles/argus_common.dir/result.cc.o"
  "CMakeFiles/argus_common.dir/result.cc.o.d"
  "CMakeFiles/argus_common.dir/rng.cc.o"
  "CMakeFiles/argus_common.dir/rng.cc.o.d"
  "libargus_common.a"
  "libargus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
